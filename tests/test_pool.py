"""Tests for the warm worker pool, cost model and zero-copy transport.

The guarantees under test:

* batch shape is a pure throughput knob: any permutation or fusion of a
  plan's cells — forced batch sizes, LPT auto-shaping, skewed cost
  vectors — merges to **bit-identical** ``ExperimentResult`` rows;
* a :class:`WorkerPool` outlives a single plan: two consecutive plans
  (and two consecutive invocations of the same plan) on one pool reuse
  the same worker processes (``spawn_count`` stays flat) and their
  per-plan memos;
* the per-worker plan memo is a bounded LRU whose evictions are
  observable (the PR-7 fix for the unbounded ``_WORKER_STATE`` global);
* shared-memory dataset transport round-trips arrays exactly, hands
  workers read-only views, and unlinks segments on pool close.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core.features import PerformanceDataset
from repro.experiments import ExperimentSettings, expand_cells, experiment_plan, run_all
from repro.experiments.pool import (
    COST_MODEL,
    CostModel,
    SharedDataset,
    WorkerPool,
    resolve_batch_cells,
    shape_batches,
)
from repro.experiments.scheduler import run_plan, worker_state_stats
from repro.parallel.threadpool import weighted_chunk_indices

TINY = ExperimentSettings(n_estimators=4, n_repeats=2, max_configs=120, random_state=0)


def _rows(result):
    return (result.rows(), result.extra)


class TestWeightedChunks:
    def test_lpt_isolates_the_giant_cell(self):
        """One giant + many tiny: the giant gets a chunk to itself and the
        tiny cells are fused around it, so the makespan is the giant."""
        weights = [100.0] + [1.0] * 12
        chunks = weighted_chunk_indices(weights, 4)
        assert [0] in chunks
        loads = [sum(weights[i] for i in chunk) for chunk in chunks]
        assert max(loads) == 100.0
        tiny_loads = [load for load in loads if load < 100.0]
        assert max(tiny_loads) - min(tiny_loads) <= 1.0  # balanced remainder

    def test_partition_is_complete_and_disjoint(self):
        weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
        chunks = weighted_chunk_indices(weights, 3)
        flat = [i for chunk in chunks for i in chunk]
        assert sorted(flat) == list(range(len(weights)))

    def test_chunks_preserve_plan_order(self):
        chunks = weighted_chunk_indices([5.0, 1.0, 5.0, 1.0, 5.0, 1.0], 2)
        for chunk in chunks:
            assert chunk == sorted(chunk)

    def test_deterministic_tie_breaking(self):
        """Equal weights and equal loads resolve by index, so the shape is
        a pure function of the cost vector."""
        weights = [1.0] * 8
        first = weighted_chunk_indices(weights, 3)
        assert first == weighted_chunk_indices(weights, 3)
        # Round-robin by index under uniform weights.
        assert first == [[0, 3, 6], [1, 4, 7], [2, 5]]

    def test_beats_contiguous_split_on_skew(self):
        """The motivating case: a descending cost vector (big fractions
        first) where the naive contiguous split piles the expensive cells
        into one chunk."""
        from repro.parallel.threadpool import chunk_indices

        weights = [8.0, 8.0, 8.0, 8.0, 1.0, 1.0, 1.0, 1.0]
        lpt = weighted_chunk_indices(weights, 4)
        naive = chunk_indices(len(weights), 4)
        makespan = max(sum(weights[i] for i in c) for c in lpt)
        naive_makespan = max(sum(weights[i] for i in c) for c in naive)
        assert makespan == 9.0 < naive_makespan == 16.0

    def test_more_chunks_than_items(self):
        chunks = weighted_chunk_indices([2.0, 1.0], 5)
        assert chunks == [[0], [1]]  # no empty chunks emitted

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_chunk_indices([1.0], 0)
        assert weighted_chunk_indices([], 3) == []


class TestResolveBatchCells:
    @pytest.mark.parametrize("value,expected", [
        (None, None), ("auto", "auto"), (3, 3), ("7", 7), (1, 1),
    ])
    def test_valid(self, value, expected):
        assert resolve_batch_cells(value) == expected

    @pytest.mark.parametrize("value", [0, -1, True, False, "bogus", "-2", 2.5])
    def test_invalid(self, value):
        with pytest.raises(ValueError, match="batch_cells"):
            resolve_batch_cells(value)


class TestCostModel:
    def test_cells_carry_cost_hints(self):
        """``expand_cells`` stamps every cell with a positive per-row cost
        hint that grows with the training fraction within a series."""
        plan = experiment_plan("figure5", TINY)
        cells = expand_cells(plan)
        assert all(cell.cost_hint > 0.0 for cell in cells)
        for spec in plan.series:
            hints = {cell.fraction: cell.cost_hint
                     for cell in cells if cell.series == spec.label}
            fractions = sorted(hints)
            assert [hints[f] for f in fractions] == sorted(hints.values())

    def test_family_weights_separate_estimators(self):
        """A random forest cell (split search) must cost more units than
        an extra-trees cell (random thresholds) at the same fraction."""
        model = CostModel()
        plan = experiment_plan("ablation_ml_backend", TINY)
        factories = {spec.label: spec.factory for spec in plan.series}
        units = {label: model.factory_units(factory, 0.1)
                 for label, factory in factories.items()}
        assert units["hybrid_random_forest"] > units["hybrid_extra_trees"]
        assert units["hybrid_knn"] < units["hybrid_extra_trees"]

    def test_hints_never_enter_the_fingerprint(self):
        """The hint is advisory scheduling metadata: two expansions of the
        same plan agree on keys and seeds regardless of the model state."""
        plan = experiment_plan("figure5", TINY)
        first = expand_cells(plan)
        COST_MODEL.observe({"extra_trees": 50.0}, 0.123)
        second = expand_cells(plan)
        assert [c.key for c in first] == [c.key for c in second]
        assert [c.seed for c in first] == [c.seed for c in second]

    def test_observe_calibrates_seconds_per_unit(self):
        model = CostModel()
        model.observe({"extra_trees": 100.0}, 0.5)
        assert model.observations == 1
        # First observation pins the scale exactly: 0.5s for 100 units.
        assert model.estimate_seconds("extra_trees", 100.0) == pytest.approx(0.5)
        # A second, slower observation moves the EWMA toward it.
        model.observe({"extra_trees": 100.0}, 1.5)
        assert 0.5 < model.estimate_seconds("extra_trees", 100.0) < 1.5

    def test_observe_ignores_degenerate_samples(self):
        model = CostModel()
        model.observe({}, 1.0)
        model.observe({"extra_trees": 10.0}, 0.0)
        model.observe({"extra_trees": 0.0}, 1.0)
        assert model.observations == 0

    def test_plan_costs_floor_and_positivity(self):
        plan = experiment_plan("figure5", TINY)
        cells = expand_cells(plan)
        costs = COST_MODEL.plan_costs(plan, cells, n_rows=120)
        assert set(costs) == {cell.key for cell in cells}
        assert all(cost > 0.0 for cost in costs.values())

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            CostModel(smoothing=0.0)
        with pytest.raises(ValueError):
            CostModel(smoothing=1.5)


class TestShapeBatches:
    def test_partition_matches_cells(self):
        plan = experiment_plan("figure5", TINY)
        cells = expand_cells(plan)
        costs = COST_MODEL.plan_costs(plan, cells, n_rows=120)
        batches = shape_batches(cells, costs, 4)
        flat = [cell.key for batch in batches for cell in batch]
        assert sorted(flat) == sorted(cell.key for cell in cells)
        # Each batch keeps its cells in plan order.
        order = {cell.key: i for i, cell in enumerate(cells)}
        for batch in batches:
            indices = [order[cell.key] for cell in batch]
            assert indices == sorted(indices)

    def test_unknown_costs_count_as_free(self):
        plan = experiment_plan("figure5", TINY)
        cells = expand_cells(plan)
        batches = shape_batches(cells, {}, 3)
        flat = [cell.key for batch in batches for cell in batch]
        assert sorted(flat) == sorted(cell.key for cell in cells)


class TestSharedDataset:
    @pytest.fixture()
    def dataset(self):
        rng = np.random.default_rng(42)
        return PerformanceDataset(
            name="shm-test", X=rng.uniform(size=(31, 4)),
            y=rng.uniform(size=31), feature_names=["a", "b", "c", "d"])

    def test_round_trip_and_read_only_views(self, dataset):
        shared = SharedDataset(dataset)
        try:
            loaded = shared.ref.materialize()
            np.testing.assert_array_equal(loaded.X, dataset.X)
            np.testing.assert_array_equal(loaded.y, dataset.y)
            assert loaded.feature_names == dataset.feature_names
            assert loaded.name == dataset.name
            with pytest.raises(ValueError):
                loaded.X[0, 0] = 1.0
            with pytest.raises(ValueError):
                loaded.y[0] = 1.0
        finally:
            from repro.experiments.pool import _ATTACHED_SEGMENTS

            attached = _ATTACHED_SEGMENTS.pop(shared.ref.shm_name, None)
            if attached is not None:
                attached.close()
            shared.close()

    def test_close_unlinks_the_segment(self, dataset):
        from multiprocessing import shared_memory

        shared = SharedDataset(dataset)
        name = shared.ref.shm_name
        shared.close()
        shared.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_pool_memoizes_by_content(self, dataset):
        with WorkerPool(1, prime=False) as pool:
            ref1 = pool.share_dataset(dataset)
            ref2 = pool.share_dataset(dataset)
            assert ref1 is not None and ref1.shm_name == ref2.shm_name
            assert ref1.canonical
        # Pool close unlinked the memoized segment.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref1.shm_name)


class TestWorkerPool:
    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(-2)

    def test_closed_pool_refuses_work(self):
        pool = WorkerPool(1, prime=False)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.run_batches(sorted, [((3, 1, 2),)])
        with pytest.raises(RuntimeError):
            pool.probe(sorted, (3, 1, 2))

    def test_pool_requires_the_process_executor(self):
        plan = experiment_plan("figure5", TINY)
        with WorkerPool(1, prime=False) as pool:
            with pytest.raises(ValueError, match="process"):
                run_plan(plan, executor="thread", jobs=2, pool=pool)

    def test_warm_pool_bit_identical_across_plans(self):
        """The acceptance oracle: >= 2 consecutive plans on one pool (and a
        repeat of the first) stay bit-identical to serial while the pool
        reuses its workers — ``spawn_count`` never grows past ``jobs``."""
        names = ("figure5", "figure6")
        serial = {name: run_plan(experiment_plan(name, TINY)) for name in names}
        with WorkerPool(2) as pool:
            assert pool.spawn_count == 2  # primed eagerly
            first = run_all(TINY, names, executor="process", jobs=2, pool=pool)
            second = run_all(TINY, names, executor="process", jobs=2, pool=pool)
            assert pool.spawn_count == 2
            assert pool.stats["plans"] == 4
            assert pool.stats["compute_seconds"] > 0.0
        for name in names:
            assert _rows(first[name]) == _rows(serial[name])
            assert _rows(second[name]) == _rows(serial[name])

    def test_forced_batch_shapes_bit_identical(self):
        """Property: every forced fusion target — singleton batches, odd
        fixed sizes, cost-model auto-shaping — merges to the same rows."""
        plan = experiment_plan("figure5", TINY)
        serial = run_plan(plan)
        with WorkerPool(2) as pool:
            for batch_cells in (1, 3, len(expand_cells(plan)) + 5, "auto"):
                shaped = run_plan(plan, executor="process", jobs=2, pool=pool,
                                  batch_cells=batch_cells)
                assert _rows(shaped) == _rows(serial), batch_cells

    def test_batch_cells_validation(self):
        plan = experiment_plan("figure5", TINY)
        with pytest.raises(ValueError, match="batch_cells"):
            run_plan(plan, executor="process", jobs=2, batch_cells=0)


@pytest.mark.skipif(multiprocessing.get_start_method() != "fork",
                    reason="monkeypatched limit must be inherited by fork")
class TestWorkerStateLru:
    def test_memo_is_bounded_and_evictions_are_counted(self, monkeypatch):
        """With the limit forced to 1, a second distinct plan evicts the
        first plan's memo inside the worker — observable via the stats
        probe.  (Workers fork after the monkeypatch, inheriting it.)"""
        monkeypatch.setattr("repro.experiments.scheduler._WORKER_STATE_LIMIT", 1)
        with WorkerPool(1) as pool:
            for name in ("figure5", "figure6"):
                run_plan(experiment_plan(name, TINY), executor="process",
                         jobs=1, pool=pool)
            stats = pool.probe(worker_state_stats)
        assert stats["limit"] == 1
        assert stats["size"] == 1
        assert stats["evictions"] >= 1

    def test_default_limit_keeps_the_quick_suite(self):
        """The default cap fits a whole quick sweep: no evictions, so
        repeated plans on a warm pool always hit their memo."""
        stats = worker_state_stats()
        assert stats["limit"] >= 4
