"""Tests for vectorized analytical prediction and the prediction cache."""

import numpy as np
import pytest

from repro.analytical import (
    AnalyticalPredictionCache,
    FmmAnalyticalModel,
    StencilAnalyticalModel,
)
from repro.analytical.base import AnalyticalModel


def _per_row_reference(model, X, feature_names):
    """The pre-vectorization path: one config rebuild per row."""
    return np.array(
        [model.predict_config(model.config_from_features(row, feature_names))
         for row in np.atleast_2d(X)],
        dtype=np.float64,
    )


class TestVectorizedPredictRows:
    def test_fmm_matches_per_row_exactly(self, small_fmm_dataset):
        data = small_fmm_dataset
        model = FmmAnalyticalModel()
        expected = _per_row_reference(model, data.X, data.feature_names)
        np.testing.assert_array_equal(
            model.predict_rows(data.X, data.feature_names), expected)

    def test_fmm_with_expansion_phases(self, small_fmm_dataset):
        data = small_fmm_dataset
        model = FmmAnalyticalModel(include_expansion_phases=True)
        expected = _per_row_reference(model, data.X, data.feature_names)
        np.testing.assert_array_equal(
            model.predict_rows(data.X, data.feature_names), expected)

    def test_stencil_matches_per_row_exactly(self, small_stencil_dataset):
        data = small_stencil_dataset
        model = StencilAnalyticalModel()
        expected = _per_row_reference(model, data.X, data.feature_names)
        np.testing.assert_array_equal(
            model.predict_rows(data.X, data.feature_names), expected)

    @pytest.mark.parametrize("kwargs", [
        dict(write_allocate=False),
        dict(timesteps=4),
    ])
    def test_stencil_options_match_per_row(self, small_stencil_dataset, kwargs):
        data = small_stencil_dataset
        model = StencilAnalyticalModel(**kwargs)
        expected = _per_row_reference(model, data.X, data.feature_names)
        np.testing.assert_array_equal(
            model.predict_rows(data.X, data.feature_names), expected)

    def test_predict_goes_through_vectorized_path(self, small_fmm_dataset):
        data = small_fmm_dataset
        model = FmmAnalyticalModel()
        np.testing.assert_array_equal(
            model.predict(data.X, data.feature_names),
            model.predict_rows(data.X, data.feature_names))

    def test_invalid_rows_raise_like_scalar_path(self):
        fmm = FmmAnalyticalModel()
        names = ["threads", "n_particles", "particles_per_leaf", "order"]
        with pytest.raises(ValueError, match="particles_per_leaf"):
            fmm.predict(np.array([[1.0, 1000.0, 0.0, 4.0]]), names)
        stencil = StencilAnalyticalModel()
        with pytest.raises(ValueError, match="I must be >= 1"):
            stencil.predict(np.array([[0.0, 16.0, 16.0]]), ["I", "J", "K"])
        with pytest.raises(ValueError, match="bi must be >= 0"):
            stencil.predict(np.array([[16.0, 16.0, 16.0, -1.0, 0.0, 0.0]]),
                            ["I", "J", "K", "bi", "bj", "bk"])

    def test_default_predict_rows_is_per_row_loop(self, small_fmm_dataset):
        data = small_fmm_dataset
        model = FmmAnalyticalModel()
        fallback = AnalyticalModel.predict_rows(model, data.X, data.feature_names)
        np.testing.assert_array_equal(
            fallback, model.predict_rows(data.X, data.feature_names))


class TestAnalyticalPredictionCache:
    def test_matches_uncached_predictions(self, small_fmm_dataset):
        data = small_fmm_dataset
        model = FmmAnalyticalModel()
        cache = AnalyticalPredictionCache(model, data.feature_names)
        np.testing.assert_array_equal(
            cache.predict(data.X), model.predict(data.X, data.feature_names))

    def test_warm_then_all_hits(self, small_fmm_dataset):
        data = small_fmm_dataset
        cache = AnalyticalPredictionCache(FmmAnalyticalModel(), data.feature_names)
        cache.warm(data.X)
        misses_after_warm = cache.misses
        assert misses_after_warm == data.n_samples
        # Arbitrary row subsets afterwards never re-evaluate the model.
        cache.predict(data.X[10:40])
        cache.predict(data.X[::3])
        assert cache.misses == misses_after_warm
        assert cache.hits == 30 + len(data.X[::3])

    def test_incremental_misses_only_for_new_rows(self, small_fmm_dataset):
        data = small_fmm_dataset
        cache = AnalyticalPredictionCache(FmmAnalyticalModel(), data.feature_names)
        cache.predict(data.X[:20])
        assert (cache.misses, cache.hits) == (20, 0)
        cache.predict(data.X[10:30])
        assert (cache.misses, cache.hits) == (30, 10)

    def test_len_and_clear(self, small_fmm_dataset):
        data = small_fmm_dataset
        cache = AnalyticalPredictionCache(FmmAnalyticalModel(), data.feature_names)
        cache.warm(data.X[:15])
        assert len(cache) == 15
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_column_count_mismatch_rejected(self, small_fmm_dataset):
        data = small_fmm_dataset
        cache = AnalyticalPredictionCache(FmmAnalyticalModel(), data.feature_names)
        with pytest.raises(ValueError, match="columns"):
            cache.predict(data.X[:, :2])

    def test_requires_analytical_model(self):
        with pytest.raises(TypeError):
            AnalyticalPredictionCache(object(), ["a"])


class TestHybridCacheIntegration:
    def test_hybrid_uses_cache_and_matches_uncached(self, small_stencil_dataset):
        from repro.core.hybrid import HybridPerformanceModel
        from repro.ml import ExtraTreesRegressor

        data = small_stencil_dataset
        train, test = data.train_test_indices(train_fraction=0.3, random_state=0)
        analytical = StencilAnalyticalModel()
        cache = AnalyticalPredictionCache(analytical, data.feature_names)

        def build(cache_arg):
            return HybridPerformanceModel(
                analytical_model=analytical,
                feature_names=data.feature_names,
                ml_model=ExtraTreesRegressor(n_estimators=5, random_state=0),
                analytical_cache=cache_arg,
                random_state=0,
            ).fit(data.X[train], data.y[train])

        cached = build(cache).predict(data.X[test])
        uncached = build(None).predict(data.X[test])
        np.testing.assert_array_equal(cached, uncached)
        assert cache.hits + cache.misses > 0

    def test_hybrid_rejects_cache_with_different_layout(self, small_stencil_dataset):
        from repro.core.hybrid import HybridPerformanceModel

        data = small_stencil_dataset
        analytical = StencilAnalyticalModel()
        cache = AnalyticalPredictionCache(
            analytical, list(reversed(data.feature_names)))
        model = HybridPerformanceModel(
            analytical_model=analytical,
            feature_names=data.feature_names,
            analytical_cache=cache,
            random_state=0,
        )
        with pytest.raises(ValueError, match="feature layout"):
            model.fit(data.X[:20], data.y[:20])

    def test_hybrid_rejects_foreign_cache(self, small_stencil_dataset):
        from repro.core.hybrid import HybridPerformanceModel

        data = small_stencil_dataset
        cache = AnalyticalPredictionCache(
            StencilAnalyticalModel(timesteps=2), data.feature_names)
        model = HybridPerformanceModel(
            analytical_model=StencilAnalyticalModel(),
            feature_names=data.feature_names,
            analytical_cache=cache,
            random_state=0,
        )
        with pytest.raises(ValueError, match="different analytical model"):
            model.fit(data.X[:20], data.y[:20])

    def test_learning_curve_warms_shared_cache(self, small_stencil_dataset):
        from repro.core.evaluation import evaluate_learning_curve
        from repro.core.hybrid import HybridPerformanceModel
        from repro.ml import ExtraTreesRegressor

        data = small_stencil_dataset
        analytical = StencilAnalyticalModel()
        cache = AnalyticalPredictionCache(analytical, data.feature_names)

        def factory(seed):
            return HybridPerformanceModel(
                analytical_model=analytical,
                feature_names=data.feature_names,
                ml_model=ExtraTreesRegressor(n_estimators=3, random_state=seed),
                analytical_cache=cache,
                random_state=seed,
            )

        evaluate_learning_curve(factory, data, fractions=[0.05, 0.1], n_repeats=3,
                                analytical_cache=cache)
        # The warm-up evaluates each dataset row exactly once; every
        # (fraction, repeat) fit/predict afterwards is served from the cache.
        assert cache.misses == data.n_samples
        assert cache.hits >= 2 * 3 * data.n_samples  # >= cells x rows-per-cell
