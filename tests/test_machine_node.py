"""Tests for repro.machine.node and presets."""

import pytest

from repro.machine import (
    MACHINE_PRESETS,
    MachineSpec,
    blue_waters_xe6,
    generic_xeon_node,
    get_machine,
    small_embedded_node,
)


class TestMachineSpec:
    def test_derived_quantities(self):
        m = blue_waters_xe6()
        assert m.n_cores == 16
        assert m.peak_flops_per_core == pytest.approx(2.3e9 * 4.0)
        assert m.peak_flops == pytest.approx(2.3e9 * 4.0 * 16)
        assert m.tc == pytest.approx(1.0 / (2.3e9 * 4.0))
        assert m.line_elements == 8
        assert 0.0 < m.machine_balance < 1.0

    def test_beta_mem_uses_stream_bandwidth(self):
        m = blue_waters_xe6()
        assert m.memory_bandwidth == pytest.approx(17e9)
        assert m.beta_mem == pytest.approx(8 / 17e9)

    def test_beta_mem_falls_back_to_dram_peak(self):
        base = blue_waters_xe6()
        m = MachineSpec(
            name="x", hierarchy=base.hierarchy, clock_hz=base.clock_hz,
            flops_per_cycle_per_core=base.flops_per_cycle_per_core,
            cores_per_socket=base.cores_per_socket, sockets=base.sockets,
            stream_bandwidth_bytes_per_s=None,
        )
        assert m.memory_bandwidth == base.hierarchy.memory.bandwidth_bytes_per_s

    def test_cache_beta_ordering(self):
        m = blue_waters_xe6()
        betas = [m.cache_beta(i) for i in range(m.hierarchy.n_levels)]
        assert betas == sorted(betas)  # L1 fastest

    def test_with_hierarchy(self):
        m = blue_waters_xe6()
        replaced = m.with_hierarchy(m.hierarchy.scaled(0.5))
        assert replaced.hierarchy.levels[0].size_bytes == m.hierarchy.levels[0].size_bytes // 2
        assert replaced.clock_hz == m.clock_hz

    def test_describe_mentions_caches(self):
        text = blue_waters_xe6().describe()
        assert "L1" in text and "L3" in text and "DRAM" in text

    def test_invalid_parameters(self):
        base = blue_waters_xe6()
        with pytest.raises(ValueError):
            MachineSpec(name="bad", hierarchy=base.hierarchy, clock_hz=0.0,
                        flops_per_cycle_per_core=4, cores_per_socket=8)
        with pytest.raises(ValueError):
            MachineSpec(name="bad", hierarchy=base.hierarchy, clock_hz=1e9,
                        flops_per_cycle_per_core=4, cores_per_socket=8, word_bytes=3)


class TestPresets:
    def test_registry_contains_all(self):
        assert set(MACHINE_PRESETS) == {"blue_waters_xe6", "generic_xeon", "small_embedded"}

    def test_get_machine(self):
        assert get_machine("blue_waters_xe6").name.startswith("Blue Waters")
        with pytest.raises(KeyError):
            get_machine("cray-1")

    def test_blue_waters_matches_paper_description(self):
        m = blue_waters_xe6()
        # Section III-A: 16KB L1d, 2MB L2, 8MB shared L3, 2.3 GHz, 64 GB.
        assert m.hierarchy.level("L1").size_bytes == 16 * 1024
        assert m.hierarchy.level("L2").size_bytes == 2 * 1024 * 1024
        assert m.hierarchy.level("L3").size_bytes == 8 * 1024 * 1024
        assert m.hierarchy.memory.size_bytes == 64 * 2**30
        assert m.clock_hz == pytest.approx(2.3e9)
        assert m.sockets == 2

    def test_other_presets_are_consistent(self):
        for preset in (generic_xeon_node(), small_embedded_node()):
            assert preset.n_cores >= 4
            assert preset.peak_flops > 0
            assert preset.hierarchy.n_levels >= 2
