"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import check_random_state, spawn_seeds


class TestCheckRandomState:
    def test_none_returns_generator(self):
        rng = check_random_state(None)
        assert isinstance(rng, np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = check_random_state(123).random(5)
        b = check_random_state(123).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).random(5)
        b = check_random_state(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_legacy_randomstate_is_wrapped(self):
        legacy = np.random.RandomState(0)
        rng = check_random_state(legacy)
        assert isinstance(rng, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            check_random_state("not-a-seed")


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds1 = spawn_seeds(7, 5)
        seeds2 = spawn_seeds(7, 5)
        assert len(seeds1) == 5
        assert seeds1 == seeds2

    def test_distinct_seeds(self):
        seeds = spawn_seeds(0, 50)
        assert len(set(seeds)) == 50

    def test_zero_is_allowed(self):
        assert spawn_seeds(1, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)
