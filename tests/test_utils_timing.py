"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import Timer, timeit_median


class TestTimer:
    def test_context_manager_records_elapsed(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed > 0.0

    def test_start_stop(self):
        t = Timer()
        t.start()
        sum(range(10000))
        elapsed = t.stop()
        assert elapsed > 0.0
        assert t.elapsed == elapsed


class TestTimeitMedian:
    def test_returns_positive_time(self):
        assert timeit_median(lambda: sum(range(1000)), repeats=3) > 0.0

    def test_kwargs_forwarded(self):
        calls = []
        timeit_median(lambda x: calls.append(x), repeats=2, x=5)
        assert calls == [5, 5]

    def test_single_repeat(self):
        assert timeit_median(lambda: None, repeats=1) >= 0.0

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            timeit_median(lambda: None, repeats=0)
