"""Tests for repro.fmm.config."""

import pytest

from repro.fmm.config import FmmConfig, FmmConfigSpace


class TestFmmConfig:
    def test_properties(self):
        cfg = FmmConfig(threads=4, n_particles=16384, particles_per_leaf=64, order=6)
        assert cfg.n_leaf_cells == pytest.approx(256.0)
        assert cfg.tree_depth == 3   # 8^3 = 512 >= 256
        assert cfg.to_dict()["order"] == 6

    def test_tree_depth_single_leaf(self):
        cfg = FmmConfig(threads=1, n_particles=100, particles_per_leaf=200, order=3)
        assert cfg.tree_depth == 0

    def test_feature_values(self):
        cfg = FmmConfig(threads=2, n_particles=4096, particles_per_leaf=32, order=5)
        assert cfg.feature_values(["order", "threads"]) == [5.0, 2.0]
        with pytest.raises(KeyError):
            cfg.feature_values(["bogus"])

    @pytest.mark.parametrize("kwargs", [
        dict(threads=0, n_particles=10, particles_per_leaf=1, order=1),
        dict(threads=1, n_particles=0, particles_per_leaf=1, order=1),
        dict(threads=1, n_particles=10, particles_per_leaf=0, order=1),
        dict(threads=1, n_particles=10, particles_per_leaf=1, order=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            FmmConfig(**kwargs)


class TestFmmConfigSpace:
    def test_paper_space_matches_section5(self):
        space = FmmConfigSpace.paper_space()
        configs = space.configs()
        assert {c.threads for c in configs} == set(range(1, 17))
        assert {c.n_particles for c in configs} == {4096, 8192, 16384}
        assert {c.order for c in configs} == set(range(2, 13))
        assert len(configs) == 16 * 3 * 7 * 11

    def test_leaf_size_never_exceeds_particles(self):
        space = FmmConfigSpace(particle_counts=(100,), leaf_sizes=(50, 200),
                               thread_counts=(1,), orders=(2,))
        configs = space.configs()
        assert all(c.particles_per_leaf <= c.n_particles for c in configs)
        assert len(configs) == 1

    def test_feature_matrix(self):
        space = FmmConfigSpace.small_space()
        X = space.to_feature_matrix()
        assert X.shape == (len(space.configs()), 4)
        assert list(space.feature_names) == ["threads", "n_particles",
                                             "particles_per_leaf", "order"]

    def test_invalid_space(self):
        with pytest.raises(ValueError):
            FmmConfigSpace(thread_counts=())
