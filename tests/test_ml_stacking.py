"""Tests for repro.ml.stacking."""

import numpy as np
import pytest

from repro.ml.forest import ExtraTreesRegressor
from repro.ml.linear import LinearRegression, Ridge
from repro.ml.metrics import r2_score
from repro.ml.stacking import StackingRegressor
from repro.ml.tree import DecisionTreeRegressor


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)
    X = rng.uniform(0, 4, size=(240, 3))
    y = 2.0 * X[:, 0] + np.sin(3 * X[:, 1]) + 0.05 * rng.normal(size=240)
    return X[:180], y[:180], X[180:], y[180:]


class TestStackingRegressor:
    def _stack(self, **kwargs):
        defaults = dict(
            estimators=[
                ("linear", LinearRegression()),
                ("tree", DecisionTreeRegressor(max_depth=6, random_state=0)),
            ],
            final_estimator=Ridge(alpha=1e-3),
            cv=4,
            random_state=0,
        )
        defaults.update(kwargs)
        return StackingRegressor(**defaults)

    def test_fit_predict(self, data):
        Xtr, ytr, Xte, yte = data
        model = self._stack().fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.9

    def test_stack_at_least_as_good_as_worst_base(self, data):
        Xtr, ytr, Xte, yte = data
        model = self._stack().fit(Xtr, ytr)
        base_scores = [r2_score(yte, est.predict(Xte)) for est in model.estimators_]
        assert r2_score(yte, model.predict(Xte)) > min(base_scores) - 0.05

    def test_transform_returns_meta_features(self, data):
        Xtr, ytr, Xte, _ = data
        model = self._stack().fit(Xtr, ytr)
        Z = model.transform(Xte)
        assert Z.shape == (len(Xte), 2)

    def test_passthrough_appends_original_features(self, data):
        Xtr, ytr, Xte, _ = data
        model = self._stack(passthrough=True).fit(Xtr, ytr)
        Z = model.transform(Xte)
        assert Z.shape == (len(Xte), 2 + Xtr.shape[1])

    def test_named_estimators(self, data):
        Xtr, ytr, _, _ = data
        model = self._stack().fit(Xtr, ytr)
        assert set(model.named_estimators_) == {"linear", "tree"}

    def test_tiny_dataset_falls_back_to_in_sample(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0.0, 1.0, 2.0])
        model = StackingRegressor(
            estimators=[("lin", LinearRegression())],
            final_estimator=LinearRegression(), cv=1,
        ).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-8)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            StackingRegressor(
                estimators=[("a", LinearRegression()), ("a", Ridge())],
                final_estimator=Ridge(),
            )._validate()

    def test_empty_estimators_rejected(self, data):
        Xtr, ytr, _, _ = data
        with pytest.raises(ValueError):
            StackingRegressor(estimators=[], final_estimator=Ridge()).fit(Xtr, ytr)

    def test_feature_mismatch_at_predict(self, data):
        Xtr, ytr, _, _ = data
        model = self._stack().fit(Xtr, ytr)
        with pytest.raises(ValueError):
            model.predict(Xtr[:, :1])

    def test_ensemble_base_estimator(self, data):
        Xtr, ytr, Xte, yte = data
        model = StackingRegressor(
            estimators=[("et", ExtraTreesRegressor(n_estimators=10, random_state=0))],
            final_estimator=LinearRegression(),
            cv=3, random_state=0,
        ).fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.85

    def test_packed_transform_matches_estimator_loop(self, data):
        """Tree-backed meta columns from the packed arena equal per-estimator predicts."""
        Xtr, ytr, Xte, _ = data
        model = StackingRegressor(
            estimators=[
                ("tree", DecisionTreeRegressor(max_depth=5, random_state=0)),
                ("et", ExtraTreesRegressor(n_estimators=7, random_state=1)),
                ("linear", LinearRegression()),
            ],
            final_estimator=Ridge(alpha=1e-3), cv=3, random_state=0,
        ).fit(Xtr, ytr)
        # One tree from the CART base + seven from the forest share the arena;
        # the linear model stays on the Python path.
        assert model.packed_bases_ is not None
        assert model.packed_bases_.n_trees == 8
        assert [column for column, _ in model._packed_slices_] == [0, 1]
        Z = model.transform(Xte)
        loop = np.column_stack([est.predict(Xte) for est in model.estimators_])
        np.testing.assert_allclose(Z, loop, rtol=1e-12, atol=1e-12)
        # The single-tree and forest columns are bit-identical to the loop path.
        np.testing.assert_array_equal(Z[:, 0], model.estimators_[0].predict(Xte))
        np.testing.assert_array_equal(Z[:, 1], model.estimators_[1].predict(Xte))

    def test_no_tree_bases_keeps_loop_path(self, data):
        Xtr, ytr, Xte, _ = data
        model = StackingRegressor(
            estimators=[("linear", LinearRegression()), ("ridge", Ridge(alpha=1.0))],
            final_estimator=Ridge(alpha=1e-3), cv=3, random_state=0,
        ).fit(Xtr, ytr)
        assert model.packed_bases_ is None
        Z = model.transform(Xte)
        loop = np.column_stack([est.predict(Xte) for est in model.estimators_])
        np.testing.assert_array_equal(Z, loop)
