"""Tests for repro.fmm.kernels (P2P, P2M, M2M, M2L, L2L, L2P)."""

import numpy as np
import pytest

from repro.fmm.expansions import CartesianExpansion
from repro.fmm.kernels import (
    l2l,
    l2p,
    laplace_potential,
    m2l,
    m2m,
    m2p,
    p2m,
    p2p,
    p2p_self,
)


@pytest.fixture(scope="module")
def cluster():
    rng = np.random.default_rng(7)
    src = rng.uniform(-0.5, 0.5, (40, 3))
    w = rng.uniform(0.1, 1.0, 40)
    return src, w


class TestLaplacePotential:
    def test_single_pair_inverse_distance(self):
        phi = laplace_potential(np.array([[3.0, 0.0, 0.0]]),
                                np.array([[0.0, 0.0, 0.0]]), np.array([2.0]))
        assert phi[0] == pytest.approx(2.0 / 3.0)

    def test_self_interaction_excluded(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        w = np.array([1.0, 1.0])
        phi = p2p_self(pos, w)
        np.testing.assert_allclose(phi, [1.0, 1.0])

    def test_superposition(self, cluster):
        src, w = cluster
        targets = np.array([[2.0, 2.0, 2.0]])
        total = laplace_potential(targets, src, w)
        split = (laplace_potential(targets, src[:20], w[:20])
                 + laplace_potential(targets, src[20:], w[20:]))
        assert total[0] == pytest.approx(split[0])

    def test_p2p_alias(self, cluster):
        src, w = cluster
        targets = np.array([[1.5, 0.0, 0.0], [0.0, 1.5, 0.0]])
        np.testing.assert_allclose(p2p(targets, src, w), laplace_potential(targets, src, w))


class TestExpansionOperators:
    @pytest.mark.parametrize("order,tol", [(2, 0.05), (4, 2e-3), (6, 1e-4)])
    def test_m2p_converges_with_order(self, cluster, order, tol):
        src, w = cluster
        exp = CartesianExpansion(order=order)
        center = np.zeros(3)
        M = p2m(exp, src, w, center)
        targets = np.array([[3.0, 2.5, 2.0], [-3.0, 2.0, -2.5]])
        exact = laplace_potential(targets, src, w)
        approx = m2p(exp, M, center, targets)
        assert np.max(np.abs(approx - exact) / np.abs(exact)) < tol

    def test_m2m_preserves_far_field(self, cluster):
        src, w = cluster
        exp = CartesianExpansion(order=6)
        child_center = np.zeros(3)
        parent_center = np.array([0.4, -0.3, 0.2])
        M_child = p2m(exp, src, w, child_center)
        M_parent = m2m(exp, M_child, child_center, parent_center)
        targets = np.array([[4.0, 4.0, 4.0]])
        exact = laplace_potential(targets, src, w)
        approx = m2p(exp, M_parent, parent_center, targets)
        assert approx[0] == pytest.approx(exact[0], rel=1e-3)

    def test_m2l_l2p_chain(self, cluster):
        src, w = cluster
        exp = CartesianExpansion(order=6)
        source_center = np.zeros(3)
        target_center = np.array([3.0, 3.0, 3.0])
        rng = np.random.default_rng(1)
        targets = target_center + rng.uniform(-0.3, 0.3, (10, 3))
        M = p2m(exp, src, w, source_center)
        L = m2l(exp, M.reshape(-1, 1), source_center.reshape(1, 3),
                target_center.reshape(1, 3))[:, 0]
        approx = l2p(exp, L, target_center, targets)
        exact = laplace_potential(targets, src, w)
        assert np.max(np.abs(approx - exact) / np.abs(exact)) < 1e-3

    def test_l2l_preserves_local_field(self, cluster):
        src, w = cluster
        exp = CartesianExpansion(order=6)
        source_center = np.zeros(3)
        parent_center = np.array([3.0, 3.0, 3.0])
        child_center = parent_center + np.array([0.2, -0.15, 0.1])
        rng = np.random.default_rng(2)
        targets = child_center + rng.uniform(-0.1, 0.1, (8, 3))
        M = p2m(exp, src, w, source_center)
        L_parent = m2l(exp, M.reshape(-1, 1), source_center.reshape(1, 3),
                       parent_center.reshape(1, 3))[:, 0]
        L_child = l2l(exp, L_parent, parent_center, child_center)
        via_child = l2p(exp, L_child, child_center, targets)
        via_parent = l2p(exp, L_parent, parent_center, targets)
        np.testing.assert_allclose(via_child, via_parent, rtol=1e-10)

    def test_m2l_batched_matches_loop(self, cluster):
        src, w = cluster
        exp = CartesianExpansion(order=4)
        centers = np.array([[0.0, 0.0, 0.0], [0.1, 0.0, -0.1]])
        M = np.column_stack([
            p2m(exp, src[:20], w[:20], centers[0]),
            p2m(exp, src[20:], w[20:], centers[1]),
        ])
        target_centers = np.array([[3.0, 3.0, 3.0], [-3.0, 2.0, 1.0]])
        batched = m2l(exp, M, centers, target_centers)
        for j in range(2):
            single = m2l(exp, M[:, j:j + 1], centers[j:j + 1], target_centers[j:j + 1])
            np.testing.assert_allclose(batched[:, j], single[:, 0], rtol=1e-10)

    def test_p2m_linear_in_weights(self, cluster):
        src, w = cluster
        exp = CartesianExpansion(order=3)
        M1 = p2m(exp, src, w, np.zeros(3))
        M2 = p2m(exp, src, 2.0 * w, np.zeros(3))
        np.testing.assert_allclose(M2, 2.0 * M1)

    def test_monopole_term_is_total_weight(self, cluster):
        src, w = cluster
        exp = CartesianExpansion(order=4)
        M = p2m(exp, src, w, np.zeros(3))
        assert M[0] == pytest.approx(w.sum())
