"""Tests for repro.fmm.octree."""

import numpy as np
import pytest

from repro.fmm.octree import Octree
from repro.fmm.particles import plummer, random_cube


class TestOctreeConstruction:
    def test_invariants_on_uniform_cube(self):
        particles = random_cube(800, random_state=0)
        tree = Octree(particles, max_per_leaf=32)
        tree.validate()
        assert tree.n_cells > 1
        assert tree.root.n_particles == 800

    def test_invariants_on_clustered_distribution(self):
        particles = plummer(600, random_state=1)
        tree = Octree(particles, max_per_leaf=16)
        tree.validate()

    def test_leaf_population_bound(self):
        particles = random_cube(1000, random_state=2)
        tree = Octree(particles, max_per_leaf=25)
        assert tree.max_leaf_population() <= 25

    def test_single_leaf_when_q_large(self):
        particles = random_cube(50, random_state=3)
        tree = Octree(particles, max_per_leaf=100)
        assert tree.n_cells == 1
        assert tree.root.is_leaf

    def test_smaller_q_gives_deeper_tree(self):
        particles = random_cube(2000, random_state=4)
        shallow = Octree(particles, max_per_leaf=256)
        deep = Octree(particles, max_per_leaf=16)
        assert deep.n_levels > shallow.n_levels
        assert deep.n_cells > shallow.n_cells

    def test_children_geometry(self):
        particles = random_cube(500, random_state=5)
        tree = Octree(particles, max_per_leaf=32)
        for cell in tree.cells:
            for child_idx in cell.children:
                child = tree.cells[child_idx]
                assert child.radius == pytest.approx(cell.radius / 2.0)
                np.testing.assert_allclose(
                    np.abs(child.center - cell.center), cell.radius / 2.0, rtol=1e-12
                )

    def test_max_level_cap(self):
        # Duplicate points can never be separated; the level cap must stop recursion.
        positions = np.zeros((20, 3))
        positions[:, 0] = 1e-12 * np.arange(20)
        from repro.fmm.particles import ParticleSet

        particles = ParticleSet(positions, np.ones(20))
        tree = Octree(particles, max_per_leaf=2, max_level=5)
        assert tree.n_levels <= 6

    def test_cells_at_level_and_leaves(self):
        particles = random_cube(400, random_state=6)
        tree = Octree(particles, max_per_leaf=32)
        assert tree.cells_at_level(0) == [tree.root]
        total_leaf_particles = sum(leaf.n_particles for leaf in tree.leaves)
        assert total_leaf_particles == 400
        assert 0 < tree.mean_leaf_population() <= 32

    def test_invalid_parameters(self):
        particles = random_cube(10, random_state=0)
        with pytest.raises(ValueError):
            Octree(particles, max_per_leaf=0)
        with pytest.raises(ValueError):
            Octree(particles, max_per_leaf=4, max_level=-1)

    def test_repr(self):
        tree = Octree(random_cube(64, random_state=0), max_per_leaf=8)
        assert "Octree" in repr(tree)
