"""Tests for repro.core.evaluation."""

import random

import numpy as np
import pytest

from repro.core.evaluation import (
    LearningCurve,
    LearningCurvePoint,
    compare_models,
    evaluate_cell,
    evaluate_learning_curve,
    merge_cell_results,
    plan_learning_curve,
)
from repro.ml import ExtraTreesRegressor, LinearRegression, Pipeline, StandardScaler


def _et_factory(seed):
    return Pipeline(steps=[("s", StandardScaler()),
                           ("m", ExtraTreesRegressor(n_estimators=8, random_state=seed))])


class TestLearningCurveContainers:
    def test_point_statistics(self):
        point = LearningCurvePoint(fraction=0.1, n_train=10, mapes=[10.0, 20.0, 30.0])
        assert point.mean == pytest.approx(20.0)
        assert point.std == pytest.approx(np.std([10.0, 20.0, 30.0]))
        assert point.min == 10.0 and point.max == 30.0

    def test_curve_lookup_and_rows(self):
        curve = LearningCurve(label="m", points=[
            LearningCurvePoint(fraction=0.1, n_train=5, mapes=[5.0]),
            LearningCurvePoint(fraction=0.2, n_train=10, mapes=[3.0]),
        ])
        assert curve.mape_at(0.2) == 3.0
        assert curve.fractions == [0.1, 0.2]
        assert curve.means == [5.0, 3.0]
        rows = curve.as_rows()
        assert rows[0]["series"] == "m" and rows[1]["mape_mean"] == 3.0
        with pytest.raises(KeyError):
            curve.mape_at(0.5)


class TestEvaluateLearningCurve:
    def test_structure(self, small_stencil_dataset):
        curve = evaluate_learning_curve(
            _et_factory, small_stencil_dataset,
            fractions=[0.05, 0.2], n_repeats=2, label="et", random_state=0)
        assert curve.label == "et"
        assert len(curve.points) == 2
        assert all(len(p.mapes) == 2 for p in curve.points)
        assert curve.points[0].n_train < curve.points[1].n_train

    def test_mape_decreases_with_more_data(self, small_stencil_dataset):
        curve = evaluate_learning_curve(
            _et_factory, small_stencil_dataset,
            fractions=[0.03, 0.4], n_repeats=2, random_state=0)
        assert curve.points[1].mean < curve.points[0].mean

    def test_deterministic(self, small_stencil_dataset):
        kwargs = dict(fractions=[0.1], n_repeats=2, random_state=5)
        c1 = evaluate_learning_curve(_et_factory, small_stencil_dataset, **kwargs)
        c2 = evaluate_learning_curve(_et_factory, small_stencil_dataset, **kwargs)
        assert c1.points[0].mapes == c2.points[0].mapes

    def test_invalid_arguments(self, small_stencil_dataset):
        with pytest.raises(ValueError):
            evaluate_learning_curve(_et_factory, small_stencil_dataset,
                                    fractions=[], n_repeats=1)
        with pytest.raises(ValueError):
            evaluate_learning_curve(_et_factory, small_stencil_dataset,
                                    fractions=[0.1], n_repeats=0)

    def test_n_train_matches_actual_split_size(self, small_stencil_dataset):
        """Regression: n_train must equal the (repeat-invariant) split size,
        recorded from the first repeat, not overwritten by the last one."""
        dataset = small_stencil_dataset
        fraction = 0.1
        curve = evaluate_learning_curve(
            _et_factory, dataset, fractions=[fraction], n_repeats=3, random_state=0)
        expected = int(np.clip(int(round(fraction * dataset.n_samples)),
                               3, dataset.n_samples - 1))
        assert curve.points[0].n_train == expected


class TestCellDecomposition:
    def test_plan_is_deterministic_and_fraction_major(self):
        plan = plan_learning_curve([0.1, 0.2], 3, series="et", random_state=7)
        again = plan_learning_curve([0.1, 0.2], 3, series="et", random_state=7)
        assert plan == again
        assert len(plan) == 6
        assert [(c.fraction, c.repeat) for c in plan] == [
            (0.1, 0), (0.1, 1), (0.1, 2), (0.2, 0), (0.2, 1), (0.2, 2)]
        assert len({c.seed for c in plan}) == 6

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            plan_learning_curve([], 1)
        with pytest.raises(ValueError):
            plan_learning_curve([0.1], 0)

    def test_evaluate_cell_is_pure(self, small_stencil_dataset):
        cell = plan_learning_curve([0.1], 1, series="et", random_state=3)[0]
        first = evaluate_cell(cell, _et_factory, small_stencil_dataset)
        second = evaluate_cell(cell, _et_factory, small_stencil_dataset)
        assert first == second
        assert first.series == "et" and first.repeat == 0

    def test_merge_is_order_independent(self, small_stencil_dataset):
        plan = plan_learning_curve([0.05, 0.15], 2, series="et", random_state=0)
        results = [evaluate_cell(c, _et_factory, small_stencil_dataset) for c in plan]
        reference = merge_cell_results(plan, results)
        shuffled = list(results)
        random.Random(4).shuffle(shuffled)
        merged = merge_cell_results(plan, shuffled)
        assert merged.label == reference.label
        assert [(p.fraction, p.n_train, p.mapes) for p in merged.points] == \
               [(p.fraction, p.n_train, p.mapes) for p in reference.points]

    def test_merge_matches_serial_evaluation(self, small_stencil_dataset):
        curve = evaluate_learning_curve(
            _et_factory, small_stencil_dataset,
            fractions=[0.05, 0.15], n_repeats=2, label="et", random_state=0)
        plan = plan_learning_curve([0.05, 0.15], 2, series="et", random_state=0)
        results = [evaluate_cell(c, _et_factory, small_stencil_dataset) for c in plan]
        merged = merge_cell_results(plan, results)
        assert [p.mapes for p in merged.points] == [p.mapes for p in curve.points]

    def test_merge_missing_result_raises(self, small_stencil_dataset):
        plan = plan_learning_curve([0.1], 2, series="et", random_state=0)
        results = [evaluate_cell(plan[0], _et_factory, small_stencil_dataset)]
        with pytest.raises(ValueError, match="missing result"):
            merge_cell_results(plan, results)
        with pytest.raises(ValueError):
            merge_cell_results([], [])


class TestCompareModels:
    def test_common_fractions(self, small_stencil_dataset):
        curves = compare_models(
            {"et": _et_factory, "linear": lambda seed: LinearRegression()},
            small_stencil_dataset, fractions=[0.1], n_repeats=2, random_state=0)
        assert set(curves) == {"et", "linear"}

    def test_per_model_fractions(self, small_stencil_dataset):
        curves = compare_models(
            {"a": _et_factory, "b": _et_factory},
            small_stencil_dataset,
            fractions_by_model={"a": [0.05], "b": [0.1, 0.2]},
            n_repeats=1, random_state=0)
        assert len(curves["a"].points) == 1
        assert len(curves["b"].points) == 2

    def test_missing_fractions_raises(self, small_stencil_dataset):
        with pytest.raises(ValueError):
            compare_models({"a": _et_factory}, small_stencil_dataset)
