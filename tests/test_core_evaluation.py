"""Tests for repro.core.evaluation."""

import numpy as np
import pytest

from repro.core.evaluation import (
    LearningCurve,
    LearningCurvePoint,
    compare_models,
    evaluate_learning_curve,
)
from repro.ml import ExtraTreesRegressor, LinearRegression, Pipeline, StandardScaler


def _et_factory(seed):
    return Pipeline(steps=[("s", StandardScaler()),
                           ("m", ExtraTreesRegressor(n_estimators=8, random_state=seed))])


class TestLearningCurveContainers:
    def test_point_statistics(self):
        point = LearningCurvePoint(fraction=0.1, n_train=10, mapes=[10.0, 20.0, 30.0])
        assert point.mean == pytest.approx(20.0)
        assert point.std == pytest.approx(np.std([10.0, 20.0, 30.0]))
        assert point.min == 10.0 and point.max == 30.0

    def test_curve_lookup_and_rows(self):
        curve = LearningCurve(label="m", points=[
            LearningCurvePoint(fraction=0.1, n_train=5, mapes=[5.0]),
            LearningCurvePoint(fraction=0.2, n_train=10, mapes=[3.0]),
        ])
        assert curve.mape_at(0.2) == 3.0
        assert curve.fractions == [0.1, 0.2]
        assert curve.means == [5.0, 3.0]
        rows = curve.as_rows()
        assert rows[0]["series"] == "m" and rows[1]["mape_mean"] == 3.0
        with pytest.raises(KeyError):
            curve.mape_at(0.5)


class TestEvaluateLearningCurve:
    def test_structure(self, small_stencil_dataset):
        curve = evaluate_learning_curve(
            _et_factory, small_stencil_dataset,
            fractions=[0.05, 0.2], n_repeats=2, label="et", random_state=0)
        assert curve.label == "et"
        assert len(curve.points) == 2
        assert all(len(p.mapes) == 2 for p in curve.points)
        assert curve.points[0].n_train < curve.points[1].n_train

    def test_mape_decreases_with_more_data(self, small_stencil_dataset):
        curve = evaluate_learning_curve(
            _et_factory, small_stencil_dataset,
            fractions=[0.03, 0.4], n_repeats=2, random_state=0)
        assert curve.points[1].mean < curve.points[0].mean

    def test_deterministic(self, small_stencil_dataset):
        kwargs = dict(fractions=[0.1], n_repeats=2, random_state=5)
        c1 = evaluate_learning_curve(_et_factory, small_stencil_dataset, **kwargs)
        c2 = evaluate_learning_curve(_et_factory, small_stencil_dataset, **kwargs)
        assert c1.points[0].mapes == c2.points[0].mapes

    def test_invalid_arguments(self, small_stencil_dataset):
        with pytest.raises(ValueError):
            evaluate_learning_curve(_et_factory, small_stencil_dataset,
                                    fractions=[], n_repeats=1)
        with pytest.raises(ValueError):
            evaluate_learning_curve(_et_factory, small_stencil_dataset,
                                    fractions=[0.1], n_repeats=0)

    def test_n_train_matches_actual_split_size(self, small_stencil_dataset):
        """Regression: n_train must equal the (repeat-invariant) split size,
        recorded from the first repeat, not overwritten by the last one."""
        dataset = small_stencil_dataset
        fraction = 0.1
        curve = evaluate_learning_curve(
            _et_factory, dataset, fractions=[fraction], n_repeats=3, random_state=0)
        expected = int(np.clip(int(round(fraction * dataset.n_samples)),
                               3, dataset.n_samples - 1))
        assert curve.points[0].n_train == expected


class TestCompareModels:
    def test_common_fractions(self, small_stencil_dataset):
        curves = compare_models(
            {"et": _et_factory, "linear": lambda seed: LinearRegression()},
            small_stencil_dataset, fractions=[0.1], n_repeats=2, random_state=0)
        assert set(curves) == {"et", "linear"}

    def test_per_model_fractions(self, small_stencil_dataset):
        curves = compare_models(
            {"a": _et_factory, "b": _et_factory},
            small_stencil_dataset,
            fractions_by_model={"a": [0.05], "b": [0.1, 0.2]},
            n_repeats=1, random_state=0)
        assert len(curves["a"].points) == 1
        assert len(curves["b"].points) == 2

    def test_missing_fractions_raises(self, small_stencil_dataset):
        with pytest.raises(ValueError):
            compare_models({"a": _et_factory}, small_stencil_dataset)
