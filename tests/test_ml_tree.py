"""Tests for repro.ml.tree (CART regression trees)."""

import numpy as np
import pytest

from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.validation import NotFittedError


@pytest.fixture(scope="module")
def simple_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 10, size=(300, 3))
    y = np.where(X[:, 0] > 5, 10.0, 1.0) + 0.5 * X[:, 1]
    return X, y


class TestFitPredict:
    def test_overfits_training_data_when_unrestricted(self, simple_data):
        X, y = simple_data
        model = DecisionTreeRegressor(random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.999

    def test_generalizes_on_step_function(self, simple_data):
        X, y = simple_data
        model = DecisionTreeRegressor(max_depth=6, random_state=0).fit(X[:200], y[:200])
        assert r2_score(y[200:], model.predict(X[200:])) > 0.9

    def test_single_sample_returns_constant(self):
        model = DecisionTreeRegressor().fit([[1.0, 2.0]], [5.0])
        assert model.predict([[3.0, 4.0]])[0] == pytest.approx(5.0)

    def test_constant_target(self):
        X = np.random.default_rng(1).random((20, 2))
        model = DecisionTreeRegressor().fit(X, np.full(20, 7.0))
        np.testing.assert_allclose(model.predict(X), 7.0)
        assert model.get_n_leaves() == 1

    def test_random_splitter_also_fits(self, simple_data):
        X, y = simple_data
        model = DecisionTreeRegressor(splitter="random", random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99

    def test_deterministic_given_seed(self, simple_data):
        X, y = simple_data
        p1 = DecisionTreeRegressor(splitter="random", random_state=3).fit(X, y).predict(X)
        p2 = DecisionTreeRegressor(splitter="random", random_state=3).fit(X, y).predict(X)
        np.testing.assert_array_equal(p1, p2)

    def test_predictions_within_target_range(self, simple_data):
        X, y = simple_data
        model = DecisionTreeRegressor(random_state=0).fit(X, y)
        preds = model.predict(X + 100.0)  # far outside the training domain
        assert preds.min() >= y.min() - 1e-12
        assert preds.max() <= y.max() + 1e-12


class TestHyperparameters:
    def test_max_depth_limits_depth(self, simple_data):
        X, y = simple_data
        model = DecisionTreeRegressor(max_depth=3, random_state=0).fit(X, y)
        assert model.get_depth() <= 3

    def test_min_samples_leaf_respected(self, simple_data):
        X, y = simple_data
        model = DecisionTreeRegressor(min_samples_leaf=20, random_state=0).fit(X, y)
        leaf_ids = model.apply(X)
        _, counts = np.unique(leaf_ids, return_counts=True)
        assert counts.min() >= 20

    def test_min_samples_split(self, simple_data):
        X, y = simple_data
        big = DecisionTreeRegressor(min_samples_split=100, random_state=0).fit(X, y)
        small = DecisionTreeRegressor(min_samples_split=2, random_state=0).fit(X, y)
        assert big.get_n_leaves() < small.get_n_leaves()

    def test_min_impurity_decrease_prunes(self, simple_data):
        X, y = simple_data
        loose = DecisionTreeRegressor(random_state=0).fit(X, y)
        strict = DecisionTreeRegressor(min_impurity_decrease=1.0, random_state=0).fit(X, y)
        assert strict.get_n_leaves() < loose.get_n_leaves()

    @pytest.mark.parametrize("max_features", [1, 2, "sqrt", "log2", 0.5, None])
    def test_max_features_variants(self, simple_data, max_features):
        X, y = simple_data
        model = DecisionTreeRegressor(max_features=max_features, random_state=0).fit(X, y)
        assert model.predict(X).shape == y.shape

    @pytest.mark.parametrize("kwargs", [
        dict(max_depth=0), dict(min_samples_split=1), dict(min_samples_leaf=0),
        dict(splitter="weird"), dict(min_impurity_decrease=-1.0),
        dict(max_features=0), dict(max_features=2.0), dict(max_features="cube"),
    ])
    def test_invalid_hyperparameters(self, simple_data, kwargs):
        X, y = simple_data
        with pytest.raises(ValueError):
            DecisionTreeRegressor(**kwargs).fit(X, y)


class TestTreeStructure:
    def test_feature_importances_sum_to_one(self, simple_data):
        X, y = simple_data
        model = DecisionTreeRegressor(random_state=0).fit(X, y)
        importances = model.feature_importances_
        assert importances.shape == (3,)
        assert importances.sum() == pytest.approx(1.0)
        # The step feature dominates the target, so it should dominate importances.
        assert np.argmax(importances) == 0

    def test_apply_returns_leaves(self, simple_data):
        X, y = simple_data
        model = DecisionTreeRegressor(max_depth=4, random_state=0).fit(X, y)
        leaves = model.apply(X)
        tree = model.tree_
        assert np.all(tree.feature[leaves] == -1)

    def test_node_count_consistency(self, simple_data):
        X, y = simple_data
        model = DecisionTreeRegressor(max_depth=5, random_state=0).fit(X, y)
        tree = model.tree_
        internal = np.sum(tree.feature >= 0)
        assert tree.node_count == internal + tree.n_leaves

    def test_decision_path_lengths_bounded_by_depth(self, simple_data):
        X, y = simple_data
        model = DecisionTreeRegressor(max_depth=4, random_state=0).fit(X, y)
        depths = model.tree_.decision_path_lengths(X)
        assert depths.max() <= 4


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict([[1.0]])

    def test_feature_count_mismatch(self, simple_data):
        X, y = simple_data
        model = DecisionTreeRegressor(random_state=0).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(X[:, :2])

    def test_nan_input_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit([[np.nan]], [1.0])
