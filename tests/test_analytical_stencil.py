"""Tests for repro.analytical.stencil_model (Section IV-A)."""

import numpy as np
import pytest

from repro.analytical.base import roofline_time
from repro.analytical.stencil_model import StencilAnalyticalModel
from repro.machine import blue_waters_xe6, small_embedded_node
from repro.stencil.config import StencilConfig


@pytest.fixture(scope="module")
def model():
    return StencilAnalyticalModel()


class TestRoofline:
    def test_max_rule(self):
        assert roofline_time(1.0, 2.0) == 2.0
        assert roofline_time(3.0, 2.0) == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            roofline_time(-1.0, 2.0)


class TestPredictions:
    def test_positive_finite(self, model):
        t = model.predict_config(StencilConfig(I=64, J=64, K=64))
        assert np.isfinite(t) and t > 0

    def test_scales_with_grid_points(self, model):
        t1 = model.predict_config(StencilConfig(I=64, J=64, K=64))
        t2 = model.predict_config(StencilConfig(I=128, J=128, K=128))
        assert 6.0 < t2 / t1 < 20.0   # 8x the points, superlinear when caches overflow

    def test_timesteps_scale_linearly(self):
        cfg = StencilConfig(I=64, J=64, K=64)
        t1 = StencilAnalyticalModel(timesteps=1).predict_config(cfg)
        t3 = StencilAnalyticalModel(timesteps=3).predict_config(cfg)
        assert t3 == pytest.approx(3.0 * t1)

    def test_serial_model_ignores_threads(self, model):
        t1 = model.predict_config(StencilConfig(I=128, J=128, K=1, threads=1))
        t8 = model.predict_config(StencilConfig(I=128, J=128, K=1, threads=8))
        assert t1 == pytest.approx(t8)   # the paper's Fig. 7 premise

    def test_blocking_enters_the_model(self, model):
        unblocked = model.predict_config(StencilConfig(I=128, J=128, K=128))
        blocked = model.predict_config(StencilConfig(I=128, J=128, K=128, bi=16, bj=16, bk=16))
        assert blocked != unblocked

    def test_cache_friendly_blocking_not_worse_than_tiny_blocking(self, model):
        good = model.predict_config(StencilConfig(I=256, J=256, K=256, bi=256, bj=32, bk=32))
        terrible = model.predict_config(StencilConfig(I=256, J=256, K=256, bi=1, bj=1, bk=1))
        assert good <= terrible

    def test_write_allocate_costs_more(self):
        cfg = StencilConfig(I=128, J=128, K=128)
        wa = StencilAnalyticalModel(write_allocate=True).predict_config(cfg)
        nwa = StencilAnalyticalModel(write_allocate=False).predict_config(cfg)
        assert wa >= nwa

    def test_smaller_machine_predicts_slower(self):
        cfg = StencilConfig(I=128, J=128, K=128)
        fast = StencilAnalyticalModel(machine=blue_waters_xe6()).predict_config(cfg)
        slow = StencilAnalyticalModel(machine=small_embedded_node()).predict_config(cfg)
        assert slow > fast

    def test_predict_configs_batch(self, model):
        configs = [StencilConfig(I=32, J=32, K=32), StencilConfig(I=64, J=64, K=64)]
        times = model.predict_configs(configs)
        assert times.shape == (2,)
        assert times[0] < times[1]


class TestFeatureInterface:
    def test_predict_from_feature_matrix(self, model):
        X = np.array([[64.0, 64.0, 64.0], [128.0, 128.0, 128.0]])
        times = model.predict(X, ["I", "J", "K"])
        assert times.shape == (2,)
        assert times[0] < times[1]

    def test_config_from_features_roundtrip(self, model):
        cfg = model.config_from_features(
            np.array([1.0, 64.0, 32.0, 1.0, 16.0, 8.0]),
            ["I", "J", "K", "bi", "bj", "bk"],
        )
        assert cfg == StencilConfig(I=1, J=64, K=32, bi=1, bj=16, bk=8)

    def test_missing_features_use_defaults(self, model):
        cfg = model.config_from_features(np.array([16.0, 16.0, 16.0]), ["I", "J", "K"])
        assert cfg.threads == 1 and cfg.bi == 0

    def test_invalid_timesteps(self):
        with pytest.raises(ValueError):
            StencilAnalyticalModel(timesteps=0)


class TestNplanesCases:
    def test_tiny_working_set_gives_one_plane(self, model):
        W = model.machine.line_elements
        nplanes = model._nplanes(cache_elements=10**9, W=W, pread=3,
                                 sread=100.0, stotal=400.0, II=10.0)
        assert nplanes == pytest.approx(1.0)

    def test_huge_working_set_gives_max_planes(self, model):
        W = model.machine.line_elements
        nplanes = model._nplanes(cache_elements=64, W=W, pread=3,
                                 sread=1e9, stotal=4e9, II=1e6)
        assert nplanes == pytest.approx(5.0)   # 2*pread - 1

    def test_nplanes_monotone_in_cache_size(self, model):
        W = model.machine.line_elements
        sizes = np.logspace(2, 8, 30)
        values = [model._nplanes(cache_elements=s, W=W, pread=3,
                                 sread=5e4, stotal=2e5, II=300.0) for s in sizes]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:], strict=False))
        assert min(values) >= 1.0 and max(values) <= 5.0
