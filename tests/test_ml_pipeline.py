"""Tests for repro.ml.pipeline."""

import numpy as np
import pytest

from repro.ml.linear import Ridge
from repro.ml.metrics import r2_score
from repro.ml.pipeline import Pipeline, make_pipeline
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.validation import NotFittedError


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(9)
    X = rng.uniform(-3, 3, size=(150, 2)) * np.array([1.0, 100.0])
    y = X[:, 0] + X[:, 1] / 100.0
    return X, y


class TestPipeline:
    def test_fit_predict(self, data):
        X, y = data
        pipe = Pipeline(steps=[("scale", StandardScaler()), ("ridge", Ridge(alpha=1e-6))])
        pipe.fit(X, y)
        assert r2_score(y, pipe.predict(X)) > 0.999

    def test_steps_are_cloned_not_mutated(self, data):
        X, y = data
        scaler = StandardScaler()
        pipe = Pipeline(steps=[("scale", scaler), ("ridge", Ridge())]).fit(X, y)
        assert scaler.mean_ is None            # original untouched
        assert pipe.named_steps["scale"].mean_ is not None

    def test_transform_requires_final_transformer(self, data):
        X, y = data
        pipe = Pipeline(steps=[("s1", StandardScaler()), ("s2", MinMaxScaler())]).fit(X)
        Z = pipe.transform(X)
        assert Z.shape == X.shape
        pipe2 = Pipeline(steps=[("s", StandardScaler()), ("ridge", Ridge())]).fit(X, y)
        with pytest.raises(AttributeError):
            pipe2.transform(X)

    def test_named_steps_before_fit_raises(self):
        pipe = Pipeline(steps=[("ridge", Ridge())])
        with pytest.raises(NotFittedError):
            _ = pipe.named_steps

    def test_scaling_matters_for_scale_sensitive_models(self, data):
        from repro.ml.neighbors import KNeighborsRegressor

        X, y = data
        raw = KNeighborsRegressor(n_neighbors=3).fit(X, y)
        piped = Pipeline(steps=[("scale", StandardScaler()),
                                ("knn", KNeighborsRegressor(n_neighbors=3))]).fit(X, y)
        assert r2_score(y, piped.predict(X)) >= r2_score(y, raw.predict(X))

    def test_duplicate_step_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            Pipeline(steps=[("a", StandardScaler()), ("a", Ridge())]).fit([[1.0]], [1.0])

    def test_empty_pipeline(self):
        with pytest.raises(ValueError):
            Pipeline(steps=[]).fit([[1.0]], [1.0])

    def test_intermediate_step_must_transform(self):
        with pytest.raises(TypeError):
            Pipeline(steps=[("tree", DecisionTreeRegressor()), ("ridge", Ridge())]).fit(
                [[1.0], [2.0]], [1.0, 2.0])


class TestMakePipeline:
    def test_names_are_generated(self):
        pipe = make_pipeline(StandardScaler(), Ridge())
        assert [name for name, _ in pipe.steps] == ["standardscaler", "ridge"]

    def test_duplicate_classes_get_suffixes(self):
        pipe = make_pipeline(StandardScaler(), StandardScaler(), Ridge())
        names = [name for name, _ in pipe.steps]
        assert names == ["standardscaler", "standardscaler-2", "ridge"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_pipeline()
