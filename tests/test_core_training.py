"""Tests for repro.core.training."""

from repro.analytical import StencilAnalyticalModel
from repro.core.training import TrainedModel, train_hybrid_model, train_ml_model
from repro.ml import KNeighborsRegressor


class TestTrainHybridModel:
    def test_returns_fitted_model_with_mape(self, small_stencil_dataset):
        result = train_hybrid_model(small_stencil_dataset, StencilAnalyticalModel(),
                                    train_fraction=0.05, random_state=0)
        assert isinstance(result, TrainedModel)
        assert result.mape > 0
        assert result.n_train == len(result.train_indices)
        assert len(result.test_indices) == small_stencil_dataset.n_samples - result.n_train

    def test_more_training_data_is_not_worse(self, small_stencil_dataset):
        small = train_hybrid_model(small_stencil_dataset, StencilAnalyticalModel(),
                                   train_fraction=0.02, random_state=1)
        large = train_hybrid_model(small_stencil_dataset, StencilAnalyticalModel(),
                                   train_fraction=0.3, random_state=1)
        assert large.mape < small.mape * 1.5   # allow noise, but the trend must hold

    def test_options_forwarded(self, small_stencil_dataset):
        result = train_hybrid_model(small_stencil_dataset, StencilAnalyticalModel(),
                                    train_fraction=0.05, aggregate_analytical=True,
                                    bagging_estimators=3, random_state=0)
        assert result.model.aggregate_analytical is True


class TestTrainMlModel:
    def test_default_pipeline(self, small_stencil_dataset):
        result = train_ml_model(small_stencil_dataset, train_fraction=0.2, random_state=0)
        assert result.mape > 0
        from repro.ml import Pipeline

        assert isinstance(result.model, Pipeline)

    def test_custom_model(self, small_stencil_dataset):
        result = train_ml_model(small_stencil_dataset, train_fraction=0.2,
                                ml_model=KNeighborsRegressor(n_neighbors=3), random_state=0)
        assert result.mape > 0

    def test_hybrid_beats_ml_at_same_tiny_fraction(self, small_stencil_dataset):
        ml = train_ml_model(small_stencil_dataset, train_fraction=0.03, random_state=3)
        hybrid = train_hybrid_model(small_stencil_dataset, StencilAnalyticalModel(),
                                    train_fraction=0.03, random_state=3)
        assert hybrid.mape < ml.mape
