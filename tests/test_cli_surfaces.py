"""The four CLI entry points share one flag surface (`repro.cli`).

Every operator-facing flag group — store locators, auth, logging — is
defined once as an argparse parent and inherited by all four entry
points, so `--auth-key-file` means the same thing whether it is handed
to the experiment runner, a fleet worker, the object server or the
model server.  The table below is the contract; the test walks each
``--help`` text so a surface that drops or forks a flag fails here,
not in an operator's shell.
"""

from __future__ import annotations

import contextlib
import io

import pytest

from repro import cli

#: entry point -> flags its surface must expose.  Store flags are
#: universal (every surface reads or serves a store); auth and logging
#: flags are universal by design — that is the point of this PR.
_SHARED_FLAGS = ("--auth-key-file", "--insecure",
                 "--log-format", "--log-level")
SURFACES = {
    "repro.experiments.__main__": _SHARED_FLAGS + ("--store-dir", "--store-url"),
    "repro.distributed.worker": _SHARED_FLAGS + ("--store-dir", "--store-url"),
    "repro.datasets.object_server": _SHARED_FLAGS + ("--bind", "--port"),
    "repro.serving.server": _SHARED_FLAGS + ("--store-dir", "--store-url",
                                             "--bind", "--port"),
}


def _help_text(module_name: str) -> str:
    import importlib

    module = importlib.import_module(module_name)
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        with pytest.raises(SystemExit) as excinfo:
            module.main(["--help"])
    assert excinfo.value.code in (0, None)
    return buffer.getvalue()


class TestSharedSurface:
    @pytest.mark.parametrize("module_name,flags", sorted(SURFACES.items()),
                             ids=sorted(SURFACES))
    def test_surface_exposes_the_shared_flags(self, module_name, flags):
        text = _help_text(module_name)
        missing = [flag for flag in flags if flag not in text]
        assert not missing, (f"{module_name} --help is missing {missing}; "
                             "shared flags live in repro.cli parents")

    def test_store_flags_are_mutually_exclusive(self):
        parser = __import__("argparse").ArgumentParser(
            parents=[cli.add_store_args()])
        with pytest.raises(SystemExit):
            with contextlib.redirect_stderr(io.StringIO()):
                parser.parse_args(["--store-dir", "d", "--store-url", "u"])


class TestAuthHelpers:
    def test_load_auth_key_reads_and_strips(self, tmp_path):
        path = tmp_path / "fleet.key"
        path.write_bytes(b"  s3cret\n")
        assert cli.load_auth_key(str(path)) == b"s3cret"
        assert cli.load_auth_key(None) is None

    def test_load_auth_key_rejects_empty_and_missing(self, tmp_path):
        empty = tmp_path / "empty.key"
        empty.write_bytes(b"\n")
        with pytest.raises(ValueError, match="empty"):
            cli.load_auth_key(str(empty))
        with pytest.raises(ValueError):
            cli.load_auth_key(str(tmp_path / "nope.key"))

    def test_is_loopback(self):
        assert cli.is_loopback("127.0.0.1")
        assert cli.is_loopback("::1")
        assert cli.is_loopback("localhost")
        assert cli.is_loopback("")
        assert not cli.is_loopback("0.0.0.0")
        assert not cli.is_loopback("192.168.1.5")
        assert not cli.is_loopback("example.com")

    def test_non_loopback_bind_requires_key_or_insecure(self):
        import argparse

        parser = argparse.ArgumentParser()
        # Loopback: always fine.
        cli.check_bind_safety(parser, "127.0.0.1", auth=None, insecure=False)
        # Non-loopback with a key or with --insecure: fine.
        cli.check_bind_safety(parser, "0.0.0.0", auth=b"k", insecure=False)
        cli.check_bind_safety(parser, "0.0.0.0", auth=None, insecure=True)
        # Non-loopback, keyless, not --insecure: hard startup error.
        with pytest.raises(SystemExit):
            with contextlib.redirect_stderr(io.StringIO()):
                cli.check_bind_safety(parser, "0.0.0.0", auth=None,
                                      insecure=False)
