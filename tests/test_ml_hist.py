"""Tests for the histogram-binned ``"hist"`` tree engine.

The guarantees under test:

* **binning protocol** — quantile edges, the ``code <= b  <=>  x <=
  edges[b]`` predicate, and the exactness guarantee (a feature with at
  most ``max_bins`` distinct values bins losslessly);
* **exactness** — with ``max_bins`` >= the number of distinct values the
  hist engine grows the *same* trees as the exact batched engine;
* **statistical equivalence** — on the registry datasets, hist forests
  reach the same held-out R^2 as the exact engines within tolerance;
* **scheduling** — ``tree_method="hist"`` estimators flow through the
  ``EvalCell`` protocol: binned trees pickle, and the serial and process
  executors produce bit-identical experiment rows.
"""

import pickle

import numpy as np
import pytest

from repro.core.evaluation import evaluate_cell, plan_learning_curve
from repro.experiments import ExperimentSettings, expand_cells, experiment_plan, run_experiment
from repro.experiments.plan import EstimatorSpec, build_factory
from repro.ml import (
    DecisionTreeRegressor,
    ExtraTreesRegressor,
    GradientBoostingRegressor,
    RandomForestRegressor,
    use_engines,
)
from repro.ml._hist import bin_dataset, compute_bin_edges
from repro.ml.engine import resolve_build_engine
from repro.ml.metrics import r2_score
from repro.ml.model_selection import train_test_split

from tests.test_ml_engines import assert_trees_identical

TINY = ExperimentSettings(n_estimators=4, n_repeats=2, max_configs=120, random_state=0)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    X = rng.uniform(0.0, 10.0, size=(400, 5))
    X[:, 3] = np.round(X[:, 3])  # a low-cardinality feature
    y = np.where(X[:, 0] > 5, 10.0, 1.0) + 0.4 * X[:, 1] ** 2 + 0.1 * rng.normal(size=400)
    return X, y


class TestBinning:
    def test_edges_are_midpoints_when_exact(self):
        X = np.array([[0.0], [1.0], [2.0], [5.0], [5.0]])
        (edges,) = compute_bin_edges(X, max_bins=256)
        np.testing.assert_allclose(edges, [0.5, 1.5, 3.5])

    def test_midpoint_rounding_guard(self):
        # Adjacent float values whose midpoint rounds up onto the right
        # value must use the left value as the edge.
        a = 1.0
        b = np.nextafter(a, 2.0)
        X = np.array([[a], [b]])
        (edges,) = compute_bin_edges(X, max_bins=4)
        assert edges[0] == a

    def test_quantile_edges_bounded(self, data):
        X, _ = data
        edges = compute_bin_edges(X, max_bins=16)
        for e in edges:
            assert e.size <= 15
            assert np.all(np.diff(e) > 0)

    def test_constant_feature_has_no_edges(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        edges = compute_bin_edges(X)
        assert edges[0].size == 0 and edges[1].size == 9

    def test_code_predicate_matches_threshold_predicate(self, data):
        X, _ = data
        codes, edges_pad = bin_dataset(X, max_bins=32)
        assert codes.dtype == np.uint8
        for f in range(X.shape[1]):
            finite = np.isfinite(edges_pad[f])
            for b in np.nonzero(finite)[0][:: max(1, finite.sum() // 5)]:
                np.testing.assert_array_equal(
                    codes[:, f] <= b, X[:, f] <= edges_pad[f, b])

    def test_max_bins_validated(self, data):
        X, _ = data
        with pytest.raises(ValueError, match="max_bins"):
            compute_bin_edges(X, max_bins=1)


def assert_trees_equivalent(a, b, X):
    """Same structure and same training-set partitions.

    Thresholds are *not* compared bit-for-bit: between two consecutive
    node-local feature values the exact engines place the threshold at
    the local midpoint while the hist engine uses the lowest global bin
    edge inside the gap — different floats, identical partitions.
    """
    np.testing.assert_array_equal(a.feature, b.feature)
    np.testing.assert_array_equal(a.left, b.left)
    np.testing.assert_array_equal(a.right, b.right)
    np.testing.assert_array_equal(a.n_samples, b.n_samples)
    np.testing.assert_array_equal(a.value, b.value)
    np.testing.assert_array_equal(a.impurity, b.impurity)
    np.testing.assert_array_equal(a.apply(X), b.apply(X))


class TestExactness:
    """With max_bins >= distinct values, hist finds the same splits as the
    exact batched engine, node for node."""

    @pytest.fixture(scope="class")
    def exact_regime_data(self):
        # 200 rows -> at most 200 distinct values per feature < 256 bins,
        # so every feature bins losslessly.
        rng = np.random.default_rng(7)
        X = rng.uniform(0.0, 10.0, size=(200, 5))
        X[:, 3] = np.round(X[:, 3])
        y = (np.where(X[:, 0] > 5, 10.0, 1.0) + 0.4 * X[:, 1] ** 2
             + 0.1 * rng.normal(size=200))
        return X, y

    # Constrained trees keep nodes large: unconstrained full-depth trees
    # reach tiny nodes where two features can induce *mirrored* partitions
    # with mathematically equal SSE, and the engines' different float
    # paths (SSE scan vs gain scan) may break such ties differently.
    @pytest.mark.parametrize("kwargs", [
        dict(min_samples_leaf=5),
        dict(max_features=2, min_samples_leaf=5),
        dict(min_samples_leaf=5, max_depth=6),
    ])
    def test_best_tree_matches_batched(self, exact_regime_data, kwargs):
        X, y = exact_regime_data
        batched = DecisionTreeRegressor(random_state=3, engine="batched",
                                        **kwargs).fit(X, y)
        hist = DecisionTreeRegressor(random_state=3, tree_method="hist",
                                     **kwargs).fit(X, y)
        assert_trees_equivalent(batched.tree_, hist.tree_, X)

    def test_forest_matches_batched(self, exact_regime_data):
        # bootstrap=False so every tree trains on the full X and the
        # partition check is valid for all rows (out-of-bag rows may fall
        # inside a threshold gap where the engines' thresholds differ).
        X, y = exact_regime_data
        batched = RandomForestRegressor(n_estimators=6, random_state=0,
                                        min_samples_leaf=5, bootstrap=False,
                                        engine="batched").fit(X, y)
        hist = RandomForestRegressor(n_estimators=6, random_state=0,
                                     min_samples_leaf=5, bootstrap=False,
                                     tree_method="hist").fit(X, y)
        for a, b in zip(batched.estimators_, hist.estimators_, strict=True):
            assert_trees_equivalent(a.tree_, b.tree_, X)
        np.testing.assert_array_equal(batched.predict(X), hist.predict(X))

    def test_low_cardinality_features_bin_losslessly(self):
        rng = np.random.default_rng(2)
        X = rng.integers(0, 12, size=(300, 3)).astype(float)
        y = X[:, 0] * 2.0 - X[:, 1] + 0.1 * rng.normal(size=300)
        batched = DecisionTreeRegressor(random_state=0, min_samples_leaf=8,
                                        engine="batched").fit(X, y)
        hist = DecisionTreeRegressor(random_state=0, min_samples_leaf=8,
                                     tree_method="hist", max_bins=12).fit(X, y)
        assert_trees_equivalent(batched.tree_, hist.tree_, X)


class TestStatisticalEquivalence:
    """Hist forests match the exact engines' held-out R^2 on registry data."""

    @pytest.mark.parametrize("cls", [ExtraTreesRegressor, RandomForestRegressor])
    def test_registry_dataset_r2(self, small_stencil_dataset, cls):
        ds = small_stencil_dataset
        Xtr, Xte, ytr, yte = train_test_split(ds.X, ds.y, test_size=0.3,
                                              random_state=1)
        exact = cls(n_estimators=30, random_state=0).fit(Xtr, ytr)
        hist = cls(n_estimators=30, random_state=0, tree_method="hist").fit(Xtr, ytr)
        r2_exact = r2_score(yte, exact.predict(Xte))
        r2_hist = r2_score(yte, hist.predict(Xte))
        assert r2_exact > 0.5
        assert abs(r2_exact - r2_hist) < 0.05

    def test_fmm_dataset_r2(self, small_fmm_dataset):
        ds = small_fmm_dataset
        Xtr, Xte, ytr, yte = train_test_split(ds.X, ds.y, test_size=0.3,
                                              random_state=1)
        exact = ExtraTreesRegressor(n_estimators=30, random_state=0).fit(Xtr, ytr)
        hist = ExtraTreesRegressor(n_estimators=30, random_state=0,
                                   tree_method="hist").fit(Xtr, ytr)
        assert abs(r2_score(yte, exact.predict(Xte))
                   - r2_score(yte, hist.predict(Xte))) < 0.05

    def test_coarse_bins_still_learn(self, data):
        """Aggressive binning (max_bins=8) exercises the carried-histogram
        subtraction path and still produces a usable model."""
        X, y = data
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, random_state=0)
        hist = ExtraTreesRegressor(n_estimators=20, random_state=0,
                                   tree_method="hist", max_bins=8).fit(Xtr, ytr)
        assert r2_score(yte, hist.predict(Xte)) > 0.8

    def test_boosting_hist_close_to_exact(self, data):
        X, y = data
        exact = GradientBoostingRegressor(n_estimators=30, random_state=0).fit(X, y)
        hist = GradientBoostingRegressor(n_estimators=30, random_state=0,
                                         tree_method="hist").fit(X, y)
        assert abs(r2_score(y, exact.predict(X)) - r2_score(y, hist.predict(X))) < 0.03

    def test_boosting_hist_subsample(self, data):
        """Stochastic stages exercise the prebinned ``codes[idx]`` path."""
        X, y = data
        hist = GradientBoostingRegressor(n_estimators=25, random_state=0,
                                         subsample=0.7, tree_method="hist").fit(X, y)
        assert r2_score(y, hist.predict(X)) > 0.8


class TestPrebinned:
    """Boosting quantizes once; the prebinned path must change nothing."""

    def test_prebinned_bit_identical(self, data):
        from repro.ml._hist import bin_dataset, build_forest_hist

        X, y = data
        kwargs = dict(sample_sets=[np.arange(X.shape[0])], seeds=[0],
                      splitter="best", max_depth=None, min_samples_split=2,
                      min_samples_leaf=1, max_features=X.shape[1],
                      min_impurity_decrease=0.0)
        plain = build_forest_hist(X, y, **kwargs)[0]
        pre = build_forest_hist(X, y, prebinned=bin_dataset(X, 256), **kwargs)[0]
        assert_trees_identical(plain, pre)

    def test_prebinned_shape_mismatch_rejected(self, data):
        from repro.ml._hist import bin_dataset, build_forest_hist

        X, y = data
        with pytest.raises(ValueError, match="prebinned"):
            build_forest_hist(
                X, y, prebinned=bin_dataset(X[:50], 256),
                sample_sets=[np.arange(X.shape[0])], seeds=[0], splitter="best",
                max_depth=None, min_samples_split=2, min_samples_leaf=1,
                max_features=X.shape[1], min_impurity_decrease=0.0)


class TestHistEngineBehaviour:
    def test_deterministic_given_seed(self, data):
        X, y = data
        a = ExtraTreesRegressor(n_estimators=4, random_state=9,
                                tree_method="hist").fit(X, y)
        b = ExtraTreesRegressor(n_estimators=4, random_state=9,
                                tree_method="hist").fit(X, y)
        for ta, tb in zip(a.estimators_, b.estimators_, strict=True):
            assert_trees_identical(ta.tree_, tb.tree_)

    def test_tree_independent_of_forest_size(self, data):
        X, y = data
        small = ExtraTreesRegressor(n_estimators=2, random_state=0,
                                    tree_method="hist").fit(X, y)
        large = ExtraTreesRegressor(n_estimators=6, random_state=0,
                                    tree_method="hist").fit(X, y)
        for a, b in zip(small.estimators_, large.estimators_[:2], strict=True):
            assert_trees_identical(a.tree_, b.tree_)

    def test_constraints_respected(self, data):
        X, y = data
        model = DecisionTreeRegressor(splitter="random", max_depth=4,
                                      min_samples_leaf=9, random_state=0,
                                      tree_method="hist").fit(X, y)
        assert model.get_depth() <= 4
        _, counts = np.unique(model.apply(X), return_counts=True)
        assert counts.min() >= 9

    def test_min_impurity_decrease_prunes(self, data):
        X, y = data
        loose = DecisionTreeRegressor(random_state=0, tree_method="hist").fit(X, y)
        strict = DecisionTreeRegressor(min_impurity_decrease=1.0, random_state=0,
                                       tree_method="hist").fit(X, y)
        assert strict.get_n_leaves() < loose.get_n_leaves()

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(1).random((30, 3))
        model = DecisionTreeRegressor(tree_method="hist").fit(X, np.full(30, 2.5))
        assert model.get_n_leaves() == 1
        np.testing.assert_allclose(model.predict(X), 2.5)

    def test_constant_features_yield_single_leaf(self):
        X = np.ones((40, 3))
        y = np.random.default_rng(0).normal(size=40)
        model = DecisionTreeRegressor(tree_method="hist").fit(X, y)
        assert model.get_n_leaves() == 1

    def test_use_engines_hist_override(self, data):
        X, y = data
        with use_engines(tree="hist", forest="hist"):
            overridden = ExtraTreesRegressor(n_estimators=3, random_state=0).fit(X, y)
        explicit = ExtraTreesRegressor(n_estimators=3, random_state=0,
                                       tree_method="hist").fit(X, y)
        for a, b in zip(overridden.estimators_, explicit.estimators_, strict=True):
            assert_trees_identical(a.tree_, b.tree_)


class TestEngineResolution:
    def test_tree_method_validation(self, data):
        X, y = data
        with pytest.raises(ValueError, match="tree_method"):
            DecisionTreeRegressor(tree_method="fast").fit(X, y)
        with pytest.raises(ValueError, match="tree_method"):
            resolve_build_engine("fast", None, kind="tree")
        with pytest.raises(ValueError, match="kind"):
            resolve_build_engine(None, None, kind="grove")

    @pytest.mark.parametrize("kwargs", [
        dict(engine="stack", tree_method="hist"),
        dict(engine="batched", tree_method="hist"),
        dict(engine="hist", tree_method="exact"),
    ])
    def test_conflicting_combinations_rejected(self, data, kwargs):
        X, y = data
        with pytest.raises(ValueError, match="conflicts"):
            DecisionTreeRegressor(**kwargs).fit(X, y)
        with pytest.raises(ValueError, match="conflicts"):
            ExtraTreesRegressor(n_estimators=2, **kwargs).fit(X, y)

    def test_exact_resists_hist_default(self, data):
        X, y = data
        exact = DecisionTreeRegressor(random_state=0, tree_method="exact").fit(X, y)
        reference = DecisionTreeRegressor(random_state=0).fit(X, y)
        with use_engines(tree="hist", forest="hist"):
            resisted = DecisionTreeRegressor(random_state=0,
                                             tree_method="exact").fit(X, y)
        assert_trees_identical(exact.tree_, reference.tree_)
        assert_trees_identical(exact.tree_, resisted.tree_)

    def test_engine_hist_equals_tree_method_hist(self, data):
        X, y = data
        a = DecisionTreeRegressor(random_state=0, engine="hist").fit(X, y)
        b = DecisionTreeRegressor(random_state=0, tree_method="hist").fit(X, y)
        assert_trees_identical(a.tree_, b.tree_)

    def test_params_roundtrip(self):
        model = ExtraTreesRegressor(tree_method="hist", max_bins=64)
        params = model.get_params(deep=False)
        assert params["tree_method"] == "hist" and params["max_bins"] == 64


class TestEvalCellProtocol:
    """Binned trees cross process boundaries through the cell protocol."""

    def test_fitted_hist_forest_pickles(self, data):
        X, y = data
        forest = ExtraTreesRegressor(n_estimators=5, random_state=0,
                                     tree_method="hist").fit(X, y)
        loaded = pickle.loads(pickle.dumps(forest))
        np.testing.assert_array_equal(forest.predict(X), loaded.predict(X))
        np.testing.assert_array_equal(forest.predict_std(X), loaded.predict_std(X))

    def test_estimator_spec_with_tree_method_pickles(self):
        spec = EstimatorSpec("extra_trees", 8, tree_method="hist")
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_plan_expands_and_cells_pickle(self):
        plan = experiment_plan("ablation_tree_method", TINY)
        assert plan is not None
        methods = {s.factory.estimator.tree_method for s in plan.series}
        assert methods == {"exact", "hist"}
        cells = expand_cells(plan)
        assert pickle.loads(pickle.dumps(cells)) == cells

    def test_evaluate_cell_with_hist_factory(self, small_stencil_dataset):
        ds = small_stencil_dataset
        spec = experiment_plan("ablation_tree_method", TINY).series[1].factory
        assert spec.estimator.tree_method == "hist"
        factory = build_factory(spec, ds)
        (cell,) = plan_learning_curve([0.2], 1, series="hist", random_state=0)
        result = evaluate_cell(cell, factory, ds)
        assert np.isfinite(result.mape)
        assert pickle.loads(pickle.dumps(result)) == result

    def test_process_executor_bit_identical(self):
        serial = run_experiment("ablation_tree_method", TINY)
        processed = run_experiment("ablation_tree_method", TINY,
                                   executor="process", jobs=2)
        assert processed.rows() == serial.rows()
        assert processed.extra == serial.extra

    def test_serial_thread_identical(self):
        serial = run_experiment("ablation_tree_method", TINY)
        threaded = run_experiment("ablation_tree_method", TINY,
                                  executor="thread", jobs=2)
        assert threaded.rows() == serial.rows()
