"""Tests for repro.ml.metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    median_absolute_percentage_error,
    r2_score,
    root_mean_squared_error,
)


class TestMape:
    def test_exact_predictions_give_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mean_absolute_percentage_error(y, y) == 0.0

    def test_known_value(self):
        y_true = np.array([100.0, 200.0])
        y_pred = np.array([110.0, 180.0])
        # 10% and 10% -> 10%
        assert mean_absolute_percentage_error(y_true, y_pred) == pytest.approx(10.0)

    def test_fraction_mode(self):
        y_true = np.array([10.0])
        y_pred = np.array([15.0])
        assert mean_absolute_percentage_error(y_true, y_pred, as_percent=False) == pytest.approx(0.5)

    def test_median_variant_is_robust(self):
        y_true = np.array([1.0, 1.0, 1.0, 1.0])
        y_pred = np.array([1.0, 1.0, 1.0, 100.0])
        assert median_absolute_percentage_error(y_true, y_pred) == 0.0
        assert mean_absolute_percentage_error(y_true, y_pred) > 1000.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0, 2.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([], [])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [np.nan])


class TestOtherMetrics:
    def test_mae_mse_rmse(self):
        y_true = np.array([0.0, 2.0])
        y_pred = np.array([1.0, 0.0])
        assert mean_absolute_error(y_true, y_pred) == pytest.approx(1.5)
        assert mean_squared_error(y_true, y_pred) == pytest.approx(2.5)
        assert root_mean_squared_error(y_true, y_pred) == pytest.approx(np.sqrt(2.5))

    def test_r2_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_r2_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        y = np.array([2.0, 2.0])
        assert r2_score(y, y) == 0.0
        assert r2_score(y, np.array([1.0, 3.0])) == -np.inf
