"""Tests for repro.experiments (figures, ablations, runner, reporting).

These run every experiment at deliberately tiny settings: the goal is to
verify wiring, result structure and basic orderings, not to reproduce the
paper's numbers (that is what ``benchmarks/`` does).
"""

import pytest

from repro.datasets import blocked_small_grid_dataset, fmm_dataset, grid_only_dataset, threaded_dataset
from repro.experiments import (
    EXPERIMENTS,
    ExperimentSettings,
    ablation_aggregation,
    ablation_analytical_quality,
    ablation_ml_backend,
    ablation_sampling_strategy,
    analytical_accuracy,
    figure3_fmm,
    figure3_stencil,
    figure5,
    figure6,
    figure7,
    figure8,
    format_curves,
    format_result,
    results_to_markdown,
    run_experiment,
)

TINY = ExperimentSettings(n_estimators=5, n_repeats=1, max_configs=150, random_state=0)


@pytest.fixture(scope="module")
def tiny_stencil_blocked():
    return blocked_small_grid_dataset(max_configs=150, random_state=0)


@pytest.fixture(scope="module")
def tiny_fmm():
    return fmm_dataset(max_configs=150, random_state=0)


class TestSettings:
    def test_presets(self):
        assert ExperimentSettings.quick().n_estimators < ExperimentSettings.full().n_estimators
        assert ExperimentSettings.full().max_configs is None


class TestFigureExperiments:
    def test_figure3_stencil(self, tiny_stencil_blocked):
        result = figure3_stencil(settings=TINY, dataset=tiny_stencil_blocked)
        assert result.experiment_id == "figure3A"
        assert set(result.curves) == {"decision_tree", "extra_trees", "random_forest"}
        assert all(len(c.points) == 5 for c in result.curves.values())

    def test_figure3_fmm(self, tiny_fmm):
        result = figure3_fmm(settings=TINY, dataset=tiny_fmm)
        assert result.experiment_id == "figure3B"
        fractions = result.curves["extra_trees"].fractions
        assert fractions == [0.10, 0.20, 0.40, 0.60, 0.80]

    def test_figure5(self):
        dataset = grid_only_dataset(max_configs=150, random_state=0)
        result = figure5(settings=TINY, dataset=dataset)
        assert set(result.curves) == {"extra_trees", "hybrid"}
        assert result.curves["extra_trees"].fractions == [0.10, 0.15, 0.20]
        assert result.curves["hybrid"].fractions == [0.01, 0.02, 0.04]
        assert "analytical_mape" in result.extra

    def test_figure6_hybrid_beats_pure_ml(self, tiny_stencil_blocked):
        result = figure6(settings=TINY, dataset=tiny_stencil_blocked)
        # The qualitative claim of the paper at the largest tested fraction.
        assert result.curves["hybrid"].mape_at(0.04) < result.curves["extra_trees"].mape_at(0.04)

    def test_figure7(self):
        dataset = threaded_dataset()
        result = figure7(settings=TINY, dataset=dataset)
        assert set(result.curves) == {"extra_trees", "hybrid"}
        assert result.extra["analytical_mape"] > 0

    def test_figure8(self, tiny_fmm):
        result = figure8(settings=TINY, dataset=tiny_fmm)
        assert result.curves["hybrid"].fractions == [0.15, 0.20, 0.25]
        assert result.extra["analytical_mape"] > 0
        assert all(len(p.mapes) == TINY.n_repeats for p in result.curves["hybrid"].points)

    def test_analytical_accuracy(self):
        result = analytical_accuracy(settings=TINY)
        assert set(result.extra) == {"stencil-grid-only", "stencil-blocked",
                                     "stencil-threaded", "fmm"}
        for info in result.extra.values():
            assert info["mape"] > 0
            assert -1.0 <= info["log_correlation"] <= 1.0


class TestAblations:
    def test_aggregation(self, tiny_stencil_blocked):
        result = ablation_aggregation(settings=TINY, dataset=tiny_stencil_blocked)
        assert set(result.curves) == {"hybrid_stacked_only", "hybrid_aggregated"}

    def test_analytical_quality(self, tiny_stencil_blocked):
        result = ablation_analytical_quality(settings=TINY, dataset=tiny_stencil_blocked)
        assert result.extra["calibrated_am_mape"] <= result.extra["untuned_am_mape"]
        assert result.extra["calibration_scale"] > 0
        assert set(result.curves) == {"hybrid_full_am", "hybrid_blocking_blind_am",
                                      "hybrid_constant_am"}

    def test_sampling_strategy(self, tiny_stencil_blocked):
        result = ablation_sampling_strategy(settings=TINY, dataset=tiny_stencil_blocked)
        assert set(result.curves) == {"hybrid_uniform", "hybrid_stratified"}

    def test_ml_backend(self, tiny_stencil_blocked):
        result = ablation_ml_backend(settings=TINY, dataset=tiny_stencil_blocked)
        assert len(result.curves) == 4


class TestRunnerAndReporting:
    def test_run_experiment_by_name(self):
        result = run_experiment("analytical_accuracy", settings=TINY)
        assert result.experiment_id == "analytical_accuracy"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_experiment_registry_names(self):
        assert "figure3_stencil" in EXPERIMENTS and "ablation_ml_backend" in EXPERIMENTS

    def test_reporting_functions(self, tiny_stencil_blocked):
        result = figure6(settings=TINY, dataset=tiny_stencil_blocked)
        table = format_curves(result.curves)
        assert "extra_trees" in table and "MAPE" in table
        report = format_result(result)
        assert "figure6" in report
        markdown = results_to_markdown({"figure6": result})
        assert markdown.count("|") > 10
        rows = result.rows()
        assert all({"series", "fraction", "mape_mean"} <= set(r) for r in rows)
        assert result.best_mape("hybrid") <= min(result.curves["hybrid"].means) + 1e-12

    def test_summary_method(self, tiny_stencil_blocked):
        result = figure6(settings=TINY, dataset=tiny_stencil_blocked)
        assert "dataset" in result.summary()
