"""Shared fixtures for the test suite.

The fixtures provide small, deterministic datasets and model instances so
individual test modules stay fast (the full suite is meant to run in a few
minutes on a laptop).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import PerformanceDataset
from repro.datasets import blocked_small_grid_dataset, fmm_dataset
from repro.fmm.particles import random_cube
from repro.machine import blue_waters_xe6


@pytest.fixture(scope="session")
def machine():
    """The Blue Waters node used across the analytical-model tests."""
    return blue_waters_xe6()


@pytest.fixture(scope="session")
def regression_data():
    """A small synthetic regression problem with non-linear structure."""
    rng = np.random.default_rng(42)
    X = rng.uniform(0.0, 10.0, size=(400, 4))
    y = (np.sin(X[:, 0]) + 0.3 * X[:, 1] ** 2 + X[:, 2] * X[:, 3] / 10.0
         + rng.normal(0.0, 0.05, size=400) + 5.0)
    return X, y

@pytest.fixture(scope="session")
def small_stencil_dataset() -> PerformanceDataset:
    """A subsampled blocked-stencil dataset (fast to generate and fit)."""
    return blocked_small_grid_dataset(max_configs=300, random_state=0)


@pytest.fixture(scope="session")
def small_fmm_dataset() -> PerformanceDataset:
    """A subsampled FMM dataset."""
    return fmm_dataset(max_configs=300, random_state=0)


@pytest.fixture(scope="session")
def small_particles():
    """A small uniform-cube particle set for FMM tests."""
    return random_cube(600, random_state=7)
