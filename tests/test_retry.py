"""Unit tests for the shared retry policy (`repro.utils.retry`).

Everything runs with an injected fake sleep/clock, so the exact backoff
schedule is asserted without any real waiting.
"""

from __future__ import annotations

import random

import pytest

from repro.utils.retry import DEFAULT_POLICY, RetryPolicy


class _Flaky:
    """Fails the first *n* calls with *exc*, then returns *value*."""

    def __init__(self, n: int, exc: Exception = OSError("boom"),
                 value: str = "ok") -> None:
        self.n = n
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n:
            raise self.exc
        return self.value


class TestDelays:
    def test_exponential_sequence_without_jitter(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0,
                             max_delay=10.0, jitter=0.0)
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(max_attempts=6, base_delay=1.0, multiplier=4.0,
                             max_delay=5.0, jitter=0.0)
        assert list(policy.delays()) == pytest.approx([1.0, 4.0, 5.0, 5.0, 5.0])

    def test_jitter_shrinks_but_never_grows_delays(self):
        policy = RetryPolicy(max_attempts=50, base_delay=1.0, multiplier=1.0,
                             max_delay=1.0, jitter=0.5)
        delays = list(policy.delays(random.Random(42)))
        assert all(0.5 <= d <= 1.0 for d in delays)
        assert len(set(delays)) > 1  # actually randomized

    def test_single_attempt_means_no_delays(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-1.0)


class TestCall:
    def test_succeeds_after_transient_failures(self):
        sleeps: list[float] = []
        fn = _Flaky(2)
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        assert policy.call(fn, sleep=sleeps.append) == "ok"
        assert fn.calls == 3
        assert sleeps == pytest.approx([0.1, 0.2])

    def test_budget_exhaustion_reraises_last_exception(self):
        fn = _Flaky(10, exc=ConnectionRefusedError("nope"))
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        with pytest.raises(ConnectionRefusedError, match="nope"):
            policy.call(fn, sleep=lambda d: None)
        assert fn.calls == 3

    def test_non_matching_exception_propagates_immediately(self):
        fn = _Flaky(1, exc=KeyError("absent"))
        with pytest.raises(KeyError):
            DEFAULT_POLICY.call(fn, sleep=lambda d: None)
        assert fn.calls == 1

    def test_giveup_stops_retrying(self):
        fn = _Flaky(5, exc=OSError("HTTP 404"))
        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(OSError):
            policy.call(fn, giveup=lambda exc: "404" in str(exc),
                        sleep=lambda d: None)
        assert fn.calls == 1

    def test_on_retry_observes_every_degradation(self):
        events: list[tuple[int, float]] = []
        fn = _Flaky(2)
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        policy.call(fn, on_retry=lambda a, exc, d: events.append((a, d)),
                    sleep=lambda d: None)
        assert events == [(1, pytest.approx(0.1)), (2, pytest.approx(0.2))]

    def test_max_elapsed_cuts_the_budget_short(self):
        clock_now = [0.0]

        def clock():
            return clock_now[0]

        def sleep(d):
            clock_now[0] += d

        fn = _Flaky(10)
        policy = RetryPolicy(max_attempts=10, base_delay=1.0, multiplier=1.0,
                             jitter=0.0, max_elapsed=2.5)
        with pytest.raises(OSError):
            policy.call(fn, sleep=sleep, clock=clock)
        # Two 1s sleeps fit in the 2.5s budget; scheduling a third would
        # exceed it, so the third failure is final.
        assert fn.calls == 3

    def test_retries_multiple_exception_types(self):
        fn = _Flaky(1, exc=ValueError("transient"))
        policy = RetryPolicy(max_attempts=2)
        assert policy.call(fn, retry_on=(ValueError,),
                           sleep=lambda d: None) == "ok"
