"""End-to-end integration tests across the library's layers.

These exercise the flows a user of the library would follow: build a
dataset from a simulator or the real engines, train hybrid and pure-ML
models, and compare them — i.e. miniature versions of the paper's
experiments and of the examples shipped in ``examples/``.
"""

import numpy as np

from repro.analytical import FmmAnalyticalModel, StencilAnalyticalModel
from repro.core import HybridPerformanceModel, train_hybrid_model, train_ml_model
from repro.datasets import load_dataset
from repro.fmm import Fmm, FmmConfig, FmmPerformanceSimulator, random_cube
from repro.ml import ExtraTreesRegressor
from repro.ml.metrics import mean_absolute_percentage_error
from repro.stencil import StencilConfig, StencilExecutor, StencilPerformanceSimulator


class TestStencilWorkflow:
    def test_hybrid_workflow_on_simulated_measurements(self):
        data = load_dataset("stencil-blocked", max_configs=400, random_state=1)
        hybrid = train_hybrid_model(data, StencilAnalyticalModel(), train_fraction=0.04,
                                    random_state=0)
        ml = train_ml_model(data, train_fraction=0.04, random_state=0)
        am_mape = mean_absolute_percentage_error(
            data.y, StencilAnalyticalModel().predict(data.X, data.feature_names))
        # Paper's headline ordering: hybrid < pure ML and hybrid < analytical alone.
        assert hybrid.mape < ml.mape
        assert hybrid.mape < am_mape

    def test_hybrid_on_real_executor_measurements(self):
        # End-to-end with *real* measured times on laptop-scale grids.
        from repro.datasets.stencil_datasets import stencil_dataset_from_space
        from repro.stencil import StencilConfigSpace

        sizes = [8, 12, 16, 20, 24, 28, 32, 40, 48]
        space = StencilConfigSpace(grid_sizes=[(s, s, s) for s in sizes])
        data = stencil_dataset_from_space(
            space, name="real-grids",
            simulator=StencilExecutor(timesteps=1, repeats=1))
        model = HybridPerformanceModel(
            analytical_model=StencilAnalyticalModel(),
            feature_names=data.feature_names,
            ml_model=ExtraTreesRegressor(n_estimators=10, random_state=0),
            random_state=0,
        )
        train, test = data.train_test_indices(train_size=5, random_state=0)
        model.fit(data.X[train], data.y[train])
        preds = model.predict(data.X[test])
        assert np.all(preds > 0)

    def test_simulator_and_analytical_model_agree_on_ranking(self):
        sim = StencilPerformanceSimulator(noise=0.0)
        am = StencilAnalyticalModel()
        configs = [StencilConfig(I=s, J=s, K=s) for s in (32, 64, 128, 192, 256)]
        sim_times = sim.times(configs)
        am_times = am.predict_configs(configs)
        assert np.all(np.argsort(sim_times) == np.argsort(am_times))


class TestFmmWorkflow:
    def test_fmm_solver_validates_against_direct_sum(self):
        particles = random_cube(800, random_state=0)
        fmm = Fmm(order=4, max_per_leaf=32)
        err = fmm.relative_error(particles)
        assert err < 5e-3

    def test_fmm_hybrid_prediction_workflow(self):
        data = load_dataset("fmm", max_configs=500, random_state=2)
        hybrid = train_hybrid_model(data, FmmAnalyticalModel(), train_fraction=0.2,
                                    random_state=0)
        ml = train_ml_model(data, train_fraction=0.2, random_state=0)
        assert hybrid.mape < ml.mape

    def test_simulator_reflects_real_solver_tradeoff(self):
        # Both the real solver and the simulator should agree that, at fixed N
        # and order, an extreme leaf size is slower than a moderate one.
        particles = random_cube(2000, random_state=1)
        real_times = {}
        for q in (8, 64):
            fmm = Fmm(order=3, max_per_leaf=q)
            real_times[q] = fmm.evaluate(particles).timings.total
        sim = FmmPerformanceSimulator(noise=0.0)
        sim_times = {q: sim.time(FmmConfig(threads=1, n_particles=2000,
                                           particles_per_leaf=q, order=3))
                     for q in (8, 64)}
        assert (real_times[8] > real_times[64]) == (sim_times[8] > sim_times[64])


class TestCrossApplication:
    def test_same_hybrid_code_path_for_both_applications(self):
        stencil_data = load_dataset("stencil-grid-only", max_configs=200, random_state=0)
        fmm_data = load_dataset("fmm", max_configs=200, random_state=0)
        for data, am in ((stencil_data, StencilAnalyticalModel()),
                         (fmm_data, FmmAnalyticalModel())):
            model = HybridPerformanceModel(
                analytical_model=am, feature_names=data.feature_names,
                ml_model=ExtraTreesRegressor(n_estimators=8, random_state=0),
                random_state=0)
            train, test = data.train_test_indices(train_fraction=0.1, random_state=0)
            model.fit(data.X[train], data.y[train])
            mape = mean_absolute_percentage_error(data.y[test], model.predict(data.X[test]))
            assert np.isfinite(mape)
