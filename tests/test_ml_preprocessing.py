"""Tests for repro.ml.preprocessing."""

import numpy as np
import pytest

from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.utils.validation import NotFittedError


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.random((50, 3)) * 10
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_feature_no_division_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_with_mean_false(self):
        X = np.random.default_rng(2).random((20, 2)) + 5.0
        Z = StandardScaler(with_mean=False).fit_transform(X)
        assert Z.mean() > 0  # not centred

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.ones((5, 3)))
        with pytest.raises(ValueError, match="features"):
            scaler.transform(np.ones((5, 2)))


class TestMinMaxScaler:
    def test_range_mapping(self):
        X = np.array([[0.0], [5.0], [10.0]])
        Z = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(Z.ravel(), [0.0, 0.5, 1.0])

    def test_custom_range(self):
        X = np.array([[0.0], [10.0]])
        Z = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        np.testing.assert_allclose(Z.ravel(), [-1.0, 1.0])

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(3)
        X = rng.random((30, 4)) * 7 - 3
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_feature(self):
        X = np.full((5, 1), 3.0)
        Z = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0)).fit(np.ones((3, 1)))
