"""Tests for repro.stencil.perf_sim (the Blue Waters stand-in)."""

import numpy as np
import pytest

from repro.machine import blue_waters_xe6, small_embedded_node
from repro.stencil.config import StencilConfig
from repro.stencil.perf_sim import StencilPerformanceSimulator


@pytest.fixture(scope="module")
def sim():
    return StencilPerformanceSimulator(noise=0.0)


class TestBasicBehaviour:
    def test_time_positive_and_finite(self, sim):
        t = sim.time(StencilConfig(I=64, J=64, K=64))
        assert np.isfinite(t) and t > 0

    def test_deterministic(self):
        sim = StencilPerformanceSimulator(random_state=1)
        cfg = StencilConfig(I=32, J=64, K=48, bi=8, bj=16, bk=48)
        assert sim.time(cfg) == sim.time(cfg)

    def test_noise_changes_with_seed_but_not_structure(self):
        cfg = StencilConfig(I=64, J=64, K=64)
        t1 = StencilPerformanceSimulator(random_state=1).time(cfg)
        t2 = StencilPerformanceSimulator(random_state=2).time(cfg)
        assert t1 != t2
        assert abs(np.log(t1 / t2)) < 0.5  # noise is a few percent, not structural

    def test_times_vectorized_matches_scalar(self, sim):
        configs = [StencilConfig(I=32, J=32, K=32), StencilConfig(I=64, J=32, K=16)]
        times = sim.times(configs)
        assert times[0] == pytest.approx(sim.time(configs[0]))
        assert times[1] == pytest.approx(sim.time(configs[1]))

    def test_run_breakdown_consistency(self, sim):
        run = sim.run(StencilConfig(I=96, J=96, K=96))
        assert run.seconds >= run.serial_seconds / 10  # thread=1: equal up to noise
        assert run.memory_seconds > 0 and run.flop_seconds > 0
        assert len(run.traffic_bytes_per_level) == sim.machine.hierarchy.n_levels + 1
        assert run.noise_factor == 1.0  # noise disabled in fixture


class TestPhysicalShape:
    def test_time_grows_with_problem_size(self, sim):
        t1 = sim.time(StencilConfig(I=64, J=64, K=64))
        t2 = sim.time(StencilConfig(I=128, J=128, K=128))
        t3 = sim.time(StencilConfig(I=256, J=256, K=256))
        assert t1 < t2 < t3
        # At least linear in the number of points (8x each step).
        assert t2 / t1 > 6.0
        assert t3 / t2 > 6.0

    def test_memory_bound_regime_for_large_grids(self, sim):
        run = sim.run(StencilConfig(I=256, J=256, K=256))
        assert run.memory_seconds > run.flop_seconds

    def test_per_point_cost_grows_with_cache_pressure(self, sim):
        # Once the working set overflows the caches, every additional
        # doubling of the grid costs more per point (more planes re-fetched
        # from the slower levels).
        mid = sim.run(StencilConfig(I=128, J=128, K=128))
        large = sim.run(StencilConfig(I=256, J=256, K=256))
        assert mid.seconds / 128 ** 3 < large.seconds / 256 ** 3

    def test_tiny_blocks_hurt(self, sim):
        unblocked = sim.time(StencilConfig(I=128, J=128, K=128))
        tiny_blocks = sim.time(StencilConfig(I=128, J=128, K=128, bi=2, bj=2, bk=2))
        assert tiny_blocks > unblocked

    def test_threads_reduce_time_but_sublinearly(self, sim):
        cfg1 = StencilConfig(I=160, J=160, K=1, threads=1)
        cfg8 = StencilConfig(I=160, J=160, K=1, threads=8)
        speedup = sim.time(cfg1) / sim.time(cfg8)
        assert 1.2 < speedup < 8.0

    def test_unrolling_effect_is_moderate(self, sim):
        base = sim.time(StencilConfig(I=64, J=64, K=64, unroll=0))
        unrolled = sim.time(StencilConfig(I=64, J=64, K=64, unroll=4))
        assert 0.8 < unrolled / base < 1.2

    def test_smaller_machine_is_slower(self):
        cfg = StencilConfig(I=128, J=128, K=128)
        bw = StencilPerformanceSimulator(machine=blue_waters_xe6(), noise=0.0).time(cfg)
        small = StencilPerformanceSimulator(machine=small_embedded_node(), noise=0.0).time(cfg)
        assert small > bw


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StencilPerformanceSimulator(timesteps=0)
        with pytest.raises(ValueError):
            StencilPerformanceSimulator(noise=-0.1)
