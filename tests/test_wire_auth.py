"""Tests for the safe-by-default wire: schema'd codec + HMAC auth (v5).

The guarantees under test:

* the wire codec round-trips every frame type without pickle — and no
  module reachable from network input even imports pickle (the property
  that makes a crafted frame a parse error instead of code execution);
* a keyed fleet refuses every wrong credential the right way: wrong-key
  and keyless HELLOs are rejected (and counted), a keyed worker refuses
  a keyless coordinator, tampered signed frames fail the *tag* check
  (before the CRC), replayed frames fail the sequence check, and a
  v4/v5 version skew is refused at HELLO;
* a fully keyed fleet produces rows bit-identical to serial with zero
  auth failures — auth changes who may talk, never what is computed;
* the HTTP servers (object store, model server, status sidecar) share
  the same auth convention: unsigned requests get 401 + a labeled
  ``repro_auth_failures_total`` increment, signed clients round-trip,
  ``/healthz`` stays open, and 401/403 is permanent for the retrying
  client (one attempt, no backoff).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.datasets.backends import MemoryBackend, ObjectStoreBackend, RetryPolicy
from repro.datasets.object_server import ObjectStoreServer
from repro.datasets.store import _FORMAT_VERSION, DatasetStore, _simulator_versions
from repro.distributed import codec, protocol
from repro.distributed.coordinator import Coordinator
from repro.distributed.worker import FleetWorker
from repro.experiments import ExperimentSettings, run_experiment
from repro.obs.http import AUTH_SCHEME, sign_request, verify_request
from repro.testing.faults import FaultySocket

KEY = b"the-fleet-shared-secret"
WRONG_KEY = b"a-different-secret"
FAST = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.02, jitter=0.0)
TINY = ExperimentSettings(n_estimators=4, n_repeats=2, max_configs=120,
                          random_state=0)


def _rows(result):
    return (result.rows(), result.extra)


def _hello(**overrides):
    fields = dict(protocol_version=protocol.PROTOCOL_VERSION,
                  store_format_version=_FORMAT_VERSION,
                  worker_id="raw-client", pid=os.getpid(),
                  simulator_versions=_simulator_versions())
    fields.update(overrides)
    return protocol.Hello(**fields)


def _keyed_hello(key, worker_id="raw-client", **overrides):
    nonce = protocol.auth_nonce()
    return _hello(worker_id=worker_id, auth_nonce=nonce,
                  auth_proof=protocol.hello_proof(key, nonce, worker_id),
                  **overrides), nonce


def _raw_handshake(address, hello):
    sock = socket.create_connection(address, timeout=10.0)
    protocol.send_message(sock, hello)
    try:
        return sock, protocol.recv_message(sock)
    except BaseException:
        sock.close()
        raise


class TestCodec:
    """The schema'd codec: round-trips in, everything else out."""

    def test_round_trips_every_wire_shape(self):
        messages = [
            protocol.Hello(5, _FORMAT_VERSION, "w1", 123, "fmm1",
                           auth_nonce="aa", auth_proof="bb"),
            protocol.Welcome("coord", auth_nonce="cc", auth_proof="dd"),
            protocol.Reject("nope"),
            protocol.Heartbeat("w1"),
            protocol.DatasetBlob("abc", os.urandom(1 << 12)),
            protocol.NoPlan(),
            protocol.Goodbye("done"),
        ]
        for message in messages:
            assert codec.decode_value(codec.encode_value(message)) == message

    def test_round_trips_primitives_and_containers(self):
        values = [None, True, False, 0, -1, 2**40, -(2**40), 1.5, float("inf"),
                  "", "héllo", b"", b"\x00\xff", (), (1, (2, 3)),
                  [1, "two", None], {"k": (1.0, b"v")}]
        for value in values:
            assert codec.decode_value(codec.encode_value(value)) == value

    def test_unknown_type_tag_fails_closed(self):
        with pytest.raises(codec.CodecError, match="tag"):
            codec.decode_value(b"\xfe")

    def test_trailing_garbage_fails_closed(self):
        buf = codec.encode_value(protocol.Heartbeat("w1")) + b"\x00"
        with pytest.raises(codec.CodecError):
            codec.decode_value(buf)

    def test_unencodable_object_fails_closed(self):
        with pytest.raises(codec.CodecError):
            codec.encode_value(object())

    def test_unknown_struct_fails_closed(self):
        class Forged:
            pass

        with pytest.raises(codec.CodecError):
            codec.encode_value(Forged())

    def test_no_pickle_reachable_from_network_input(self):
        """The property that makes v5 safe: no module that parses bytes
        arriving from the network imports pickle at all."""
        import repro.datasets.backends
        import repro.datasets.object_server
        import repro.distributed.codec
        import repro.distributed.coordinator
        import repro.distributed.protocol
        import repro.distributed.worker
        import repro.obs.http
        import repro.serving.server

        wire_modules = [
            repro.distributed.codec, repro.distributed.protocol,
            repro.distributed.coordinator, repro.distributed.worker,
            repro.obs.http, repro.datasets.object_server,
            repro.datasets.backends, repro.serving.server,
        ]
        import ast
        from pathlib import Path

        for module in wire_modules:
            tree = ast.parse(Path(module.__file__).read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    names = [node.module or ""]
                else:
                    continue
                for name in names:
                    assert not name.split(".")[0] == "pickle", (
                        f"{module.__name__} imports pickle")


class TestFrameAuth:
    """Per-frame signing: tamper, replay, downgrade and reflection."""

    def _session_pair(self):
        worker = protocol.FrameAuth(KEY, role="worker")
        coordinator = protocol.FrameAuth(KEY, role="coordinator")
        wn, cn = protocol.auth_nonce(), protocol.auth_nonce()
        worker.activate_session(wn, cn)
        coordinator.activate_session(wn, cn)
        return worker, coordinator

    def test_signed_round_trip(self):
        worker, coordinator = self._session_pair()
        left, right = socket.socketpair()
        try:
            for i in range(3):
                protocol.send_message(left, protocol.Heartbeat(f"w{i}"),
                                      None, worker)
                assert protocol.recv_message(right, coordinator) == \
                    protocol.Heartbeat(f"w{i}")
        finally:
            left.close()
            right.close()

    def test_tampered_payload_fails_the_tag_check_not_the_crc(self):
        """A flipped payload bit on a signed frame must be AuthError:
        the tag covers the payload and is checked before the CRC."""
        worker, coordinator = self._session_pair()
        left, right = socket.socketpair()
        try:
            faulty = FaultySocket(left, corrupt_frames={1})
            protocol.send_message(faulty, protocol.Heartbeat("w1"), None, worker)
            with pytest.raises(protocol.AuthError, match="authentication"):
                protocol.recv_message(right, coordinator)
            assert [e["kind"] for e in faulty.log] == ["corrupt"]
        finally:
            left.close()
            right.close()

    def test_tampered_tag_with_intact_crc_fails(self):
        """Corrupting only the trailing tag leaves payload + CRC valid —
        a rejection here provably comes from the tag check."""
        worker, coordinator = self._session_pair()
        left, right = socket.socketpair()
        try:
            faulty = FaultySocket(left, corrupt_tags={1})
            protocol.send_message(faulty, protocol.Heartbeat("w1"), None, worker)
            with pytest.raises(protocol.AuthError):
                protocol.recv_message(right, coordinator)
            assert [e["kind"] for e in faulty.log] == ["tag"]
        finally:
            left.close()
            right.close()

    def test_replayed_frame_fails_the_sequence_check(self):
        worker, coordinator = self._session_pair()
        left, right = socket.socketpair()
        try:
            # Capture the signed frame bytes, then send them twice.
            captured = []

            class Tap:
                def sendall(self, data):
                    captured.append(data)
                    left.sendall(data)

            protocol.send_message(Tap(), protocol.Heartbeat("w1"), None, worker)
            assert protocol.recv_message(right, coordinator) == \
                protocol.Heartbeat("w1")
            left.sendall(captured[0])  # verbatim replay
            with pytest.raises(protocol.AuthError, match="sequence 1"):
                protocol.recv_message(right, coordinator)
        finally:
            left.close()
            right.close()

    def test_unsigned_frame_on_authenticated_connection_fails(self):
        _, coordinator = self._session_pair()
        left, right = socket.socketpair()
        try:
            protocol.send_message(left, protocol.Heartbeat("w1"))  # no auth
            with pytest.raises(protocol.AuthError, match="unsigned"):
                protocol.recv_message(right, coordinator)
        finally:
            left.close()
            right.close()

    def test_signed_frame_without_session_fails(self):
        worker, _ = self._session_pair()
        left, right = socket.socketpair()
        try:
            protocol.send_message(left, protocol.Heartbeat("w1"), None, worker)
            with pytest.raises(protocol.AuthError, match="unauthenticated"):
                protocol.recv_message(right)  # receiver has no session
        finally:
            left.close()
            right.close()

    def test_reflected_frame_fails_direction_labels(self):
        """A worker's own signed frame bounced back never verifies: send
        and receive directions use distinct HMAC labels."""
        worker, _ = self._session_pair()
        left, right = socket.socketpair()
        try:
            protocol.send_message(left, protocol.Heartbeat("w1"), None, worker)
            with pytest.raises(protocol.AuthError):
                protocol.recv_message(right, worker)  # reflected to sender
        finally:
            left.close()
            right.close()


class TestFleetAuthMatrix:
    """The handshake failure matrix, over real coordinator sockets."""

    @pytest.fixture()
    def keyed_coordinator(self):
        with Coordinator(auth_key=KEY) as coordinator:
            yield coordinator

    def test_wrong_key_hello_rejected_and_counted(self, keyed_coordinator):
        hello, _ = _keyed_hello(WRONG_KEY)
        sock, reply = _raw_handshake(keyed_coordinator.address, hello)
        sock.close()
        assert isinstance(reply, protocol.Reject)
        assert "authentication failed" in reply.reason
        assert keyed_coordinator.auth_failures == 1
        assert keyed_coordinator.stats["rejected_handshakes"] == 1

    def test_keyless_hello_rejected_and_counted(self, keyed_coordinator):
        sock, reply = _raw_handshake(keyed_coordinator.address, _hello())
        sock.close()
        assert isinstance(reply, protocol.Reject)
        assert "authentication required" in reply.reason
        assert keyed_coordinator.auth_failures == 1

    def test_right_key_welcomed_with_coordinator_proof(self, keyed_coordinator):
        hello, nonce = _keyed_hello(KEY)
        sock, reply = _raw_handshake(keyed_coordinator.address, hello)
        sock.close()
        assert isinstance(reply, protocol.Welcome)
        assert reply.auth_proof == protocol.welcome_proof(
            KEY, nonce, reply.auth_nonce)
        assert keyed_coordinator.auth_failures == 0

    def test_version_skew_refused_before_auth(self, keyed_coordinator):
        """A v4 peer (no auth fields) is refused on the version check —
        mixed-version fleets never get as far as exchanging frames."""
        sock, reply = _raw_handshake(
            keyed_coordinator.address,
            _hello(protocol_version=protocol.PROTOCOL_VERSION - 1))
        sock.close()
        assert isinstance(reply, protocol.Reject)
        assert "protocol version" in reply.reason

    def test_wrong_key_worker_exits_with_error(self, keyed_coordinator):
        worker = FleetWorker(keyed_coordinator.address, auth_key=WRONG_KEY,
                             connect_timeout=5.0)
        assert worker.run() == 2
        assert keyed_coordinator.auth_failures == 1

    def test_keyless_worker_exits_with_error(self, keyed_coordinator):
        worker = FleetWorker(keyed_coordinator.address, connect_timeout=5.0)
        assert worker.run() == 2

    def test_keyed_worker_refuses_keyless_coordinator(self):
        """No silent downgrade: a worker configured for an authenticated
        fleet must not accept an unauthenticated session."""
        with Coordinator() as coordinator:
            worker = FleetWorker(coordinator.address, auth_key=KEY,
                                 connect_timeout=5.0)
            assert worker.run() == 2
            assert coordinator.stats["rejected_handshakes"] == 1

    def test_tampered_signed_frame_severs_and_counts(self, keyed_coordinator):
        """Post-handshake tampering: the coordinator counts the auth
        failure and severs — the frame is never processed."""
        hello, nonce = _keyed_hello(KEY, worker_id="tamperer")
        sock, reply = _raw_handshake(keyed_coordinator.address, hello)
        try:
            auth = protocol.FrameAuth(KEY, role="worker")
            auth.activate_session(nonce, reply.auth_nonce)
            faulty = FaultySocket(sock, corrupt_tags={1})
            protocol.send_message(faulty, protocol.GetPlan("tamperer"),
                                  None, auth)
            # The coordinator drops the connection without replying.
            with pytest.raises((protocol.ConnectionClosed, ConnectionError)):
                protocol.recv_message(sock, auth)
        finally:
            sock.close()
        assert keyed_coordinator.auth_failures == 1


class TestKeyedFleetEndToEnd:
    def test_keyed_fleet_bit_identical_with_zero_auth_failures(self):
        serial = run_experiment("figure6", TINY)
        with Coordinator(auth_key=KEY) as coordinator:
            workers = [FleetWorker(coordinator.address, auth_key=KEY)
                       for _ in range(2)]
            threads = [threading.Thread(target=w.run, daemon=True)
                       for w in workers]
            for thread in threads:
                thread.start()
            remote = run_experiment("figure6", TINY, executor="remote",
                                    fleet=coordinator)
            assert coordinator.auth_failures == 0
        for thread in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        assert _rows(remote) == _rows(serial)
        assert sum(w.cells_evaluated for w in workers) == 12

    def test_keyed_worker_signs_store_requests(self, tmp_path):
        """One secret secures both planes: a worker given the fleet key
        can bootstrap from a keyed object store."""
        store_backend = MemoryBackend()
        with ObjectStoreServer(store_backend, auth=KEY) as server:
            seed = DatasetStore(ObjectStoreBackend(server.url, retry=FAST,
                                                   auth=KEY))
            serial = run_experiment("figure6", TINY, store=seed)
            with Coordinator(auth_key=KEY) as coordinator:
                worker = FleetWorker(coordinator.address, auth_key=KEY,
                                     store=server.url)
                thread = threading.Thread(target=worker.run, daemon=True)
                thread.start()
                remote = run_experiment("figure6", TINY, executor="remote",
                                        fleet=coordinator, store=seed)
            thread.join(timeout=10.0)
            assert _rows(remote) == _rows(serial)
            assert server.auth_failures == 0


class TestHTTPAuth:
    """The shared Authorization convention across every HTTP server."""

    def test_sign_verify_round_trip(self):
        header = sign_request(KEY, "PUT", "/datasets/a.npz", b"body")
        assert header.startswith(AUTH_SCHEME + " ")
        assert verify_request(KEY, "PUT", "/datasets/a.npz", b"body", header)
        assert not verify_request(KEY, "GET", "/datasets/a.npz", b"body", header)
        assert not verify_request(KEY, "PUT", "/datasets/b.npz", b"body", header)
        assert not verify_request(KEY, "PUT", "/datasets/a.npz", b"other", header)
        assert not verify_request(WRONG_KEY, "PUT", "/datasets/a.npz", b"body",
                                  header)
        assert not verify_request(KEY, "PUT", "/datasets/a.npz", b"body", None)
        assert not verify_request(KEY, "PUT", "/datasets/a.npz", b"body",
                                  "Basic dXNlcg==")

    def test_object_server_rejects_unsigned_and_counts(self):
        with ObjectStoreServer(MemoryBackend(), auth=KEY) as server:
            request = urllib.request.Request(
                server.url + "datasets/a.npz", data=b"blob", method="PUT")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 401
            assert excinfo.value.headers["WWW-Authenticate"] == AUTH_SCHEME
            assert server.auth_failures == 1
            assert server.stats["puts"] == 0  # rejected before the handler

    def test_object_server_healthz_stays_open(self):
        with ObjectStoreServer(MemoryBackend(), auth=KEY) as server:
            with urllib.request.urlopen(server.url + "healthz") as response:
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ok"
            assert server.auth_failures == 0

    def test_signed_client_round_trips(self):
        with ObjectStoreServer(MemoryBackend(), auth=KEY) as server:
            client = ObjectStoreBackend(server.url, retry=FAST, auth=KEY)
            client.write("datasets/a.npz", b"payload")
            assert client.read("datasets/a.npz") == b"payload"
            assert "datasets/a.npz" in client.list("datasets/")
            assert client.exists("datasets/a.npz")
            client.delete("datasets/a.npz")
            assert server.auth_failures == 0

    def test_signed_client_with_awkward_key_names(self):
        """Signing covers the percent-encoded request target, so keys
        that URL-encode differently still verify."""
        with ObjectStoreServer(MemoryBackend(), auth=KEY) as server:
            client = ObjectStoreBackend(server.url, retry=FAST, auth=KEY)
            key = "datasets/w 1+x/a b.npz"
            client.write(key, b"data")
            assert client.read(key) == b"data"
            assert server.auth_failures == 0

    def test_wrong_key_client_is_permanent_and_never_retries(self):
        """401 is a _giveup error: exactly one attempt, retries counter
        untouched — re-sending the same signature cannot succeed."""
        with ObjectStoreServer(MemoryBackend(), auth=KEY) as server:
            client = ObjectStoreBackend(server.url, retry=FAST, auth=WRONG_KEY)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                client.write("datasets/a.npz", b"blob")
            assert excinfo.value.code == 401
            assert client.retries == 0
            assert server.auth_failures == 1

    def test_model_server_shares_the_convention(self, tmp_path):
        from repro.serving.server import ModelServer

        with ModelServer(DatasetStore(tmp_path), auth=KEY) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/stats")
            assert excinfo.value.code == 401
            assert server.auth_failures == 1
            # A signed request passes.
            request = urllib.request.Request(server.url + "/stats")
            request.add_header("Authorization",
                               sign_request(KEY, "GET", "/stats"))
            with urllib.request.urlopen(request) as response:
                assert response.status == 200
            # /healthz needs no signature even on a keyed server.
            with urllib.request.urlopen(server.url + "/healthz") as response:
                assert response.status == 200

    def test_status_server_shares_the_convention(self):
        with Coordinator(auth_key=KEY) as coordinator:
            status = coordinator.serve_status(auth=KEY)
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(status.url + "/metrics")
                assert excinfo.value.code == 401
                request = urllib.request.Request(status.url + "/metrics")
                request.add_header("Authorization",
                                   sign_request(KEY, "GET", "/metrics"))
                with urllib.request.urlopen(request) as response:
                    text = response.read().decode()
                assert "repro_auth_failures_total" in text
                with urllib.request.urlopen(status.url + "/healthz") as response:
                    assert response.status == 200
            finally:
                status.stop()

    def test_unauthenticated_server_ignores_authorization(self):
        """A keyless server serves signed and unsigned clients alike —
        auth is opt-in per server, not inferred from headers."""
        with ObjectStoreServer(MemoryBackend()) as server:
            signed = ObjectStoreBackend(server.url, retry=FAST, auth=KEY)
            signed.write("datasets/a.npz", b"blob")
            plain = ObjectStoreBackend(server.url, retry=FAST)
            assert plain.read("datasets/a.npz") == b"blob"


class TestDatasetStoreAuth:
    def test_store_url_coercion_threads_the_key(self):
        with ObjectStoreServer(MemoryBackend(), auth=KEY) as server:
            store = DatasetStore(server.url, auth=KEY)
            spec_free_key = "caches/x"
            store.backend.write(spec_free_key, b"v")
            assert store.backend.read(spec_free_key) == b"v"
            assert server.auth_failures == 0
