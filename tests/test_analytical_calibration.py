"""Tests for repro.analytical.calibration."""

import numpy as np
import pytest

from repro.analytical.calibration import CalibratedModel, calibrate_scale
from repro.analytical.stencil_model import StencilAnalyticalModel
from repro.ml.metrics import mean_absolute_percentage_error
from repro.stencil.config import StencilConfig
from repro.stencil.perf_sim import StencilPerformanceSimulator


class TestCalibrateScale:
    def test_exact_scale_recovered(self):
        preds = np.array([1.0, 2.0, 3.0])
        meas = 2.5 * preds
        assert calibrate_scale(preds, meas) == pytest.approx(2.5)

    def test_least_squares_property(self):
        rng = np.random.default_rng(0)
        preds = rng.uniform(1.0, 2.0, 50)
        meas = 3.0 * preds + rng.normal(0, 0.01, 50)
        s = calibrate_scale(preds, meas)
        assert s == pytest.approx(3.0, rel=0.02)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            calibrate_scale([1.0, 2.0], [1.0])

    def test_zero_predictions_rejected(self):
        with pytest.raises(ValueError):
            calibrate_scale([0.0, 0.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            calibrate_scale([], [])


class TestCalibratedModel:
    def test_scaled_prediction(self):
        base = StencilAnalyticalModel()
        wrapped = CalibratedModel(base=base, scale=2.0)
        cfg = StencilConfig(I=32, J=32, K=32)
        assert wrapped.predict_config(cfg) == pytest.approx(2.0 * base.predict_config(cfg))

    def test_fit_reduces_mape_against_simulator(self):
        sim = StencilPerformanceSimulator(noise=0.0)
        base = StencilAnalyticalModel()
        configs = [StencilConfig(I=s, J=s, K=s) for s in range(96, 257, 32)]
        measured = sim.times(configs)
        calibrated = CalibratedModel.fit(base, configs, measured)
        raw_mape = mean_absolute_percentage_error(measured, base.predict_configs(configs))
        cal_mape = mean_absolute_percentage_error(measured, calibrated.predict_configs(configs))
        assert cal_mape < raw_mape

    def test_config_from_features_delegates(self):
        wrapped = CalibratedModel(base=StencilAnalyticalModel(), scale=1.5)
        cfg = wrapped.config_from_features(np.array([16.0, 16.0, 16.0]), ["I", "J", "K"])
        assert cfg.shape == (16, 16, 16)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            CalibratedModel(base=StencilAnalyticalModel(), scale=0.0)
