"""Executable documentation: every ``pycon`` example in the docs must run.

Runs doctest over ``README.md`` and every ``docs/*.md`` file, so the
quickstarts users copy-paste are continuously verified against the real
API — a doc that drifts from the code fails the suite (and the CI
``serving-smoke`` job, which runs this module) instead of silently
rotting.  Each documentation file is also required to actually contain
at least one executable example, so the doctest net cannot silently go
empty when a file is rewritten.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)
#: Files that are pure reference/specification and carry no runnable
#: examples by design (everything else must have at least one).
NO_EXAMPLES_OK = {"architecture.md", "protocol.md"}

OPTIONS = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE


def test_doc_files_exist():
    names = [path.name for path in DOC_FILES]
    assert "README.md" in names
    assert "serving.md" in names
    assert "architecture.md" in names
    assert "protocol.md" in names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_documentation_examples_execute(path):
    text = path.read_text(encoding="utf-8")
    parser = doctest.DocTestParser()
    test = parser.get_doctest(text, {}, path.name, str(path), 0)
    if not test.examples:
        assert path.name in NO_EXAMPLES_OK, (
            f"{path.name} has no executable examples; add a ``pycon`` "
            "quickstart or list it in NO_EXAMPLES_OK with a reason")
        return
    runner = doctest.DocTestRunner(optionflags=OPTIONS)
    runner.run(test)
    results = runner.summarize(verbose=False)
    assert results.failed == 0, (
        f"{results.failed} of {results.attempted} doctest example(s) in "
        f"{path.name} failed — run python -m doctest {path} -v for detail")


def test_quickstart_docs_have_examples():
    """The user-facing quickstarts must stay executable, not prose-only."""
    parser = doctest.DocTestParser()
    for name in ("README.md", "serving.md"):
        path = next(p for p in DOC_FILES if p.name == name)
        test = parser.get_doctest(path.read_text(encoding="utf-8"),
                                  {}, name, str(path), 0)
        assert len(test.examples) >= 3, name
