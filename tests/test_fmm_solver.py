"""Tests for repro.fmm.solver and repro.fmm.direct (end-to-end accuracy)."""

import numpy as np
import pytest

from repro.fmm.direct import DirectSummation
from repro.fmm.particles import plummer, random_cube
from repro.fmm.solver import Fmm


@pytest.fixture(scope="module")
def reference(small_particles):
    return DirectSummation().potentials(small_particles)


class TestDirectSummation:
    def test_blocked_matches_unblocked(self, small_particles):
        full = DirectSummation(block_size=10_000).potentials(small_particles)
        blocked = DirectSummation(block_size=64).potentials(small_particles)
        np.testing.assert_allclose(blocked, full, rtol=1e-12)

    def test_threaded_matches_serial(self, small_particles):
        serial = DirectSummation(n_jobs=1).potentials(small_particles)
        threaded = DirectSummation(n_jobs=4).potentials(small_particles)
        np.testing.assert_allclose(threaded, serial, rtol=1e-12)

    def test_custom_targets(self, small_particles):
        targets = np.array([[2.0, 2.0, 2.0]])
        phi = DirectSummation().potentials(small_particles, targets=targets)
        assert phi.shape == (1,)
        assert phi[0] > 0

    def test_empty_targets_shape_and_dtype(self, small_particles):
        phi = DirectSummation().potentials(
            small_particles, targets=np.zeros((0, 3)))
        assert phi.shape == (0,)
        assert phi.dtype == np.float64

    def test_operation_count(self):
        assert DirectSummation().operation_count(100) == 10_000

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            DirectSummation(block_size=0)


class TestFmmAccuracy:
    def test_error_decreases_with_order(self, small_particles, reference):
        errors = []
        for order in (2, 4, 6):
            fmm = Fmm(order=order, max_per_leaf=32, theta=0.55)
            result = fmm.evaluate(small_particles)
            err = np.linalg.norm(result.potentials - reference) / np.linalg.norm(reference)
            errors.append(err)
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 1e-3

    def test_lists_traversal_also_accurate(self, small_particles, reference):
        fmm = Fmm(order=4, max_per_leaf=32, traversal="lists")
        result = fmm.evaluate(small_particles)
        err = np.linalg.norm(result.potentials - reference) / np.linalg.norm(reference)
        assert err < 5e-3

    def test_clustered_distribution(self):
        particles = plummer(400, random_state=3)
        reference = DirectSummation().potentials(particles)
        result = Fmm(order=5, max_per_leaf=16, theta=0.5).evaluate(particles)
        err = np.linalg.norm(result.potentials - reference) / np.linalg.norm(reference)
        assert err < 5e-3

    def test_relative_error_helper(self, small_particles, reference):
        fmm = Fmm(order=4, max_per_leaf=32)
        err_full = fmm.relative_error(small_particles)
        err_given_ref = fmm.relative_error(small_particles, reference=reference)
        assert err_given_ref == pytest.approx(err_full, rel=1e-6)
        err_sampled = fmm.relative_error(small_particles, sample=100, random_state=0)
        assert err_sampled < 5e-2

    def test_threaded_p2p_matches_serial(self, small_particles):
        serial = Fmm(order=3, max_per_leaf=32, n_jobs=1).evaluate(small_particles)
        threaded = Fmm(order=3, max_per_leaf=32, n_jobs=4).evaluate(small_particles)
        np.testing.assert_allclose(threaded.potentials, serial.potentials, rtol=1e-12)


class TestFmmStructure:
    def test_result_metadata(self, small_particles):
        result = Fmm(order=3, max_per_leaf=64).evaluate(small_particles)
        assert result.n_particles == small_particles.n
        assert result.order == 3
        assert result.octree.max_per_leaf == 64
        timings = result.timings.as_dict()
        assert set(timings) >= {"p2m", "m2l", "p2p", "total"}
        assert timings["total"] > 0
        assert result.timings.total == pytest.approx(
            sum(v for k, v in timings.items() if k != "total"))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Fmm(order=0)
        with pytest.raises(ValueError):
            Fmm(max_per_leaf=0)
        with pytest.raises(ValueError):
            Fmm(traversal="bfs")

    def test_small_problem_single_leaf(self):
        particles = random_cube(30, random_state=1)
        result = Fmm(order=3, max_per_leaf=100).evaluate(particles)
        reference = DirectSummation().potentials(particles)
        # Single leaf means pure P2P: exact up to floating point.
        np.testing.assert_allclose(result.potentials, reference, rtol=1e-10)
