"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    NotFittedError,
    check_array,
    check_in_range,
    check_is_fitted,
    check_positive,
    check_X_y,
)


class TestCheckArray:
    def test_converts_lists(self):
        arr = check_array([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.shape == (2, 2)

    def test_rejects_1d_when_2d_required(self):
        with pytest.raises(ValueError, match="2-D"):
            check_array([1.0, 2.0, 3.0])

    def test_allows_1d_when_not_required(self):
        arr = check_array([1.0, 2.0], ensure_2d=False)
        assert arr.shape == (2,)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_array([[np.inf, 1.0]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_array(np.empty((0, 3)))

    def test_output_is_contiguous(self):
        base = np.asfortranarray(np.ones((4, 3)))
        assert check_array(base).flags["C_CONTIGUOUS"]


class TestCheckXy:
    def test_matching_lengths(self):
        X, y = check_X_y([[1.0], [2.0]], [1.0, 2.0])
        assert X.shape == (2, 1)
        assert y.shape == (2,)

    def test_column_vector_y_is_flattened(self):
        _, y = check_X_y([[1.0], [2.0]], [[1.0], [2.0]])
        assert y.shape == (2,)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="inconsistent"):
            check_X_y([[1.0], [2.0]], [1.0])

    def test_nan_target_rejected(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0]], [np.nan])


class TestScalarChecks:
    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        check_positive(0.0, "x", strict=False)
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", strict=False)
        with pytest.raises(TypeError):
            check_positive("a", "x")

    def test_check_in_range(self):
        assert check_in_range(0.5, "x", 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            check_in_range(1.5, "x", 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)


class TestCheckIsFitted:
    def test_unfitted_raises(self):
        class Dummy:
            attr_ = None

        with pytest.raises(NotFittedError):
            check_is_fitted(Dummy(), "attr_")

    def test_fitted_passes(self):
        class Dummy:
            attr_ = 1.0

        check_is_fitted(Dummy(), ["attr_"])
