"""Tests for repro.ml.base (parameter introspection and clone)."""

import numpy as np
import pytest

from repro.ml.base import clone
from repro.ml.forest import ExtraTreesRegressor
from repro.ml.linear import Ridge
from repro.ml.stacking import StackingRegressor
from repro.ml.tree import DecisionTreeRegressor


class TestGetSetParams:
    def test_get_params_returns_init_arguments(self):
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=2)
        params = tree.get_params()
        assert params["max_depth"] == 3
        assert params["min_samples_leaf"] == 2

    def test_set_params_roundtrip(self):
        tree = DecisionTreeRegressor()
        tree.set_params(max_depth=5)
        assert tree.max_depth == 5

    def test_set_params_invalid_key(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            DecisionTreeRegressor().set_params(bogus=1)

    def test_nested_params(self):
        stack = StackingRegressor(
            estimators=[("tree", DecisionTreeRegressor())],
            final_estimator=Ridge(alpha=1.0),
        )
        params = stack.get_params(deep=True)
        assert params["final_estimator__alpha"] == 1.0
        stack.set_params(final_estimator__alpha=0.5)
        assert stack.final_estimator.alpha == 0.5

    def test_repr_contains_class_and_params(self):
        text = repr(DecisionTreeRegressor(max_depth=2))
        assert "DecisionTreeRegressor" in text and "max_depth=2" in text


class TestClone:
    def test_clone_copies_params_not_state(self):
        rng = np.random.default_rng(0)
        X = rng.random((50, 3))
        y = X @ np.array([1.0, 2.0, 3.0])
        model = DecisionTreeRegressor(max_depth=4, random_state=0).fit(X, y)
        copy = clone(model)
        assert copy.max_depth == 4
        assert copy.tree_ is None  # unfitted

    def test_clone_nested_estimator(self):
        stack = StackingRegressor(
            estimators=[("et", ExtraTreesRegressor(n_estimators=3))],
            final_estimator=Ridge(),
        )
        copy = clone(stack)
        assert copy.estimators[0][1] is not stack.estimators[0][1]
        assert copy.final_estimator is not stack.final_estimator

    def test_clone_rejects_non_estimator(self):
        with pytest.raises(TypeError):
            clone("not an estimator")


class TestRegressorScore:
    def test_score_is_r2(self):
        rng = np.random.default_rng(1)
        X = rng.random((100, 2))
        y = 3 * X[:, 0] - X[:, 1]
        model = Ridge(alpha=1e-8).fit(X, y)
        assert model.score(X, y) == pytest.approx(1.0, abs=1e-6)
