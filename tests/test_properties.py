"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fmm.expansions import MultiIndexSet, taylor_coefficients
from repro.fmm.octree import Octree
from repro.fmm.particles import ParticleSet
from repro.ml.metrics import mean_absolute_percentage_error, r2_score
from repro.ml.model_selection import KFold, train_test_split
from repro.ml.preprocessing import StandardScaler
from repro.ml.tree import DecisionTreeRegressor
from repro.parallel.scaling import ThreadScalingModel, amdahl_speedup
from repro.parallel.threadpool import chunk_indices
from repro.stencil.blocking import block_counts, iterate_blocks
from repro.stencil.config import StencilConfig
from repro.stencil.perf_sim import StencilPerformanceSimulator

HYPOTHESIS_SETTINGS = dict(max_examples=25, deadline=None)


# --------------------------------------------------------------------------- #
# Blocking / chunking invariants
# --------------------------------------------------------------------------- #
@settings(**HYPOTHESIS_SETTINGS)
@given(
    shape=st.tuples(*[st.integers(1, 24)] * 3),
    blocks=st.tuples(*[st.integers(1, 30)] * 3),
)
def test_blocks_partition_domain(shape, blocks):
    cover = np.zeros(shape, dtype=int)
    for si, sj, sk in iterate_blocks(shape, blocks):
        cover[si, sj, sk] += 1
    assert np.all(cover == 1)
    nbi, nbj, nbk = block_counts(shape, blocks)
    assert nbi * nbj * nbk >= 1


@settings(**HYPOTHESIS_SETTINGS)
@given(n_items=st.integers(0, 200), n_chunks=st.integers(1, 50))
def test_chunk_indices_partition(n_items, n_chunks):
    chunks = chunk_indices(n_items, n_chunks)
    flat = [i for c in chunks for i in c]
    assert flat == list(range(n_items))
    if chunks:
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1


# --------------------------------------------------------------------------- #
# Scaling-law invariants
# --------------------------------------------------------------------------- #
@settings(**HYPOTHESIS_SETTINGS)
@given(threads=st.integers(1, 64), serial=st.floats(0.0, 1.0))
def test_amdahl_bounds(threads, serial):
    s = amdahl_speedup(threads, serial)
    assert 1.0 - 1e-12 <= s <= threads + 1e-12
    if serial > 0:
        assert s <= 1.0 / serial + 1e-9


@settings(**HYPOTHESIS_SETTINGS)
@given(
    threads=st.integers(1, 32),
    serial=st.floats(0.0, 0.5),
    compute=st.floats(0.0, 1.0),
    saturation=st.floats(1.0, 16.0),
    base_time=st.floats(1e-6, 10.0),
)
def test_thread_scaling_time_is_positive_and_bounded_below(threads, serial, compute,
                                                           saturation, base_time):
    model = ThreadScalingModel(serial_fraction=serial, saturation_threads=saturation,
                               compute_fraction=compute, overhead_s=0.0, numa_penalty=1.0)
    t = model.time(base_time, threads)
    assert t > 0
    # Never faster than perfect linear scaling.
    assert t >= base_time / threads - 1e-12


# --------------------------------------------------------------------------- #
# ML substrate invariants
# --------------------------------------------------------------------------- #
@settings(**HYPOTHESIS_SETTINGS)
@given(
    n=st.integers(5, 60),
    train_fraction=st.floats(0.1, 0.9),
    seed=st.integers(0, 1000),
)
def test_train_test_split_partitions(n, train_fraction, seed):
    X = np.arange(n).reshape(-1, 1)
    Xtr, Xte = train_test_split(X, train_size=train_fraction, random_state=seed)
    combined = np.sort(np.concatenate([Xtr, Xte]).ravel())
    assert len(Xtr) + len(Xte) == n
    np.testing.assert_array_equal(combined, np.arange(n))


@settings(**HYPOTHESIS_SETTINGS)
@given(n=st.integers(4, 100), k=st.integers(2, 6), seed=st.integers(0, 100))
def test_kfold_partitions(n, k, seed):
    if n < k:
        return
    folds = list(KFold(n_splits=k, shuffle=True, random_state=seed).split(n))
    all_test = np.concatenate([t for _, t in folds])
    assert sorted(all_test.tolist()) == list(range(n))
    for train, test in folds:
        assert set(train).isdisjoint(test)


@settings(**HYPOTHESIS_SETTINGS)
@given(
    data=st.lists(st.floats(-100.0, 100.0), min_size=3, max_size=40),
    scale=st.floats(0.1, 10.0),
)
def test_standard_scaler_is_affine_invariant_target(data, scale):
    X = np.array(data).reshape(-1, 1)
    if np.std(X) < 1e-9:
        return
    scaler = StandardScaler()
    Z1 = scaler.fit_transform(X)
    Z2 = StandardScaler().fit_transform(X * scale)
    np.testing.assert_allclose(Z1, Z2, atol=1e-8)


@settings(**HYPOTHESIS_SETTINGS)
@given(
    y=st.lists(st.floats(0.1, 1e3), min_size=2, max_size=30),
)
def test_mape_zero_iff_exact_and_scale_invariant(y):
    y = np.array(y)
    assert mean_absolute_percentage_error(y, y) == 0.0
    assert mean_absolute_percentage_error(3 * y, 3 * y * 1.1) == pytest.approx(
        mean_absolute_percentage_error(y, 1.1 * y))


@settings(**HYPOTHESIS_SETTINGS)
@given(
    n=st.integers(10, 80),
    depth=st.integers(1, 6),
    seed=st.integers(0, 1000),
)
def test_tree_predictions_bounded_by_training_targets(n, depth, seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-5, 5, size=(n, 3))
    y = rng.uniform(-10, 10, size=n)
    model = DecisionTreeRegressor(max_depth=depth, random_state=seed).fit(X, y)
    queries = rng.uniform(-50, 50, size=(20, 3))
    preds = model.predict(queries)
    assert preds.min() >= y.min() - 1e-9
    assert preds.max() <= y.max() + 1e-9
    # Training-set R^2 never negative for a fitted tree (it can only improve
    # on the constant mean predictor).
    assert r2_score(y, model.predict(X)) >= -1e-9


# --------------------------------------------------------------------------- #
# FMM invariants
# --------------------------------------------------------------------------- #
@settings(**HYPOTHESIS_SETTINGS)
@given(
    n=st.integers(1, 120),
    q=st.integers(1, 40),
    seed=st.integers(0, 1000),
)
def test_octree_invariants_hold_for_random_inputs(n, q, seed):
    rng = np.random.default_rng(seed)
    particles = ParticleSet(rng.uniform(-1, 1, (n, 3)), rng.uniform(0.1, 1.0, n))
    tree = Octree(particles, max_per_leaf=q)
    tree.validate()
    assert sum(leaf.n_particles for leaf in tree.leaves) == n


@settings(**HYPOTHESIS_SETTINGS)
@given(
    rx=st.floats(0.5, 3.0), ry=st.floats(-3.0, 3.0), rz=st.floats(-3.0, 3.0),
    tx=st.floats(-0.1, 0.1), ty=st.floats(-0.1, 0.1), tz=st.floats(-0.1, 0.1),
)
def test_taylor_expansion_converges_for_well_separated_points(rx, ry, rz, tx, ty, tz):
    mset = MultiIndexSet(6)
    R = np.array([[rx, ry, rz]])
    t = np.array([tx, ty, tz])
    T = taylor_coefficients(mset, R)[:, 0]
    exact = 1.0 / np.linalg.norm(R[0] + t)
    approx = float(mset.monomials(t.reshape(1, 3))[0] @ T)
    # |t| <= 0.18, |R| >= 0.5, so the series converges; demand 4 digits.
    assert approx == pytest.approx(exact, rel=5e-3)


# --------------------------------------------------------------------------- #
# Performance-simulator invariants
# --------------------------------------------------------------------------- #
@settings(**HYPOTHESIS_SETTINGS)
@given(
    j=st.integers(2, 8), k=st.integers(2, 8),
    bj=st.integers(1, 8), bk=st.integers(1, 8),
    threads=st.integers(1, 16),
)
def test_stencil_simulator_always_positive_and_finite(j, k, bj, bk, threads):
    sim = StencilPerformanceSimulator(noise=0.02)
    config = StencilConfig(I=1, J=16 * j, K=16 * k, bi=1, bj=bj, bk=bk, threads=threads)
    t = sim.time(config)
    assert np.isfinite(t) and t > 0
