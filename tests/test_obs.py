"""Tests for the observability plane (`repro.obs`).

The guarantees under test:

* the metrics registry is safe to snapshot while other threads
  increment (the regression for the formerly unlocked ``stats`` dicts
  on the autoscaler and worker pool);
* snapshot ``merge`` is associative and commutative — any tree of
  per-worker snapshots folds to the same fleet-wide view — and refuses
  kind/labelname/bucket-edge conflicts instead of silently mixing;
* Prometheus text exposition matches the 0.0.4 format exactly (golden
  test) and round-trips through :func:`parse_prometheus`;
* histogram bucket edges follow Prometheus semantics (``v <= le``);
* a plan run under **each of the four executors** produces a span per
  cell with intact parent links (cell → batch → plan → experiment) and
  bit-identical result rows; the remote run additionally exposes a
  scrapeable coordinator status port whose
  ``repro_cells_completed_total`` equals the plan's cell count;
* the structured-log formatter round-trips through ``json.loads``.
"""

from __future__ import annotations

import io
import json
import logging
import pickle
import threading
import urllib.error
import urllib.request

import pytest

from repro.distributed.coordinator import Coordinator
from repro.distributed.worker import FleetWorker
from repro.experiments import ExperimentSettings, run_experiment
from repro.experiments.plan import expand_cells, experiment_plan
from repro.experiments.reporting import format_trace_summary, summarize_trace
from repro.obs import (
    REGISTRY,
    TRACER,
    JsonFormatter,
    MetricsRegistry,
    MetricsSnapshot,
    Span,
    configure_logging,
    parse_prometheus,
    render_prometheus,
    span_into,
    write_trace,
)
from repro.obs.http import CONTENT_TYPE, StatusServer, metrics_body
from repro.obs.tracing import SpanContext, load_trace

TINY = ExperimentSettings(n_estimators=4, n_repeats=2, max_configs=120, random_state=0)


class TestRegistry:
    def test_counter_gauge_basics(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total", "a counter")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        gauge = reg.gauge("g", "a gauge")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13
        # Getters are idempotent: same name -> same instrument.
        assert reg.counter("c_total") is counter

    def test_conflicting_reregistration_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("m_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("m_total", labelnames=("op",))

    def test_labeled_children(self):
        reg = MetricsRegistry()
        counter = reg.counter("ops_total", labelnames=("op",))
        counter.labels(op="read").inc(3)
        counter.labels(op="write").inc()
        assert counter.labels(op="read").value == 3
        assert counter.labels(op="write").value == 1
        snap = reg.snapshot()
        assert snap.value("ops_total", op="read") == 3
        with pytest.raises(ValueError):
            counter.labels(wrong="x")
        with pytest.raises(ValueError):
            counter.inc()  # labeled metric has no unlabeled sample

    def test_unlabeled_counter_visible_before_first_inc(self):
        """Scrapers must see the series (at 0) from creation, not only
        after the first increment — the acceptance scrape can happen
        before any cell completes."""
        reg = MetricsRegistry()
        reg.counter("idle_total", "never incremented")
        samples = parse_prometheus(render_prometheus(reg.snapshot()))
        assert samples[("idle_total", ())] == 0

    def test_snapshot_during_increment_is_atomic(self):
        """The satellite regression: hammer one counter from many threads
        while another thread snapshots — no torn reads, exact total."""
        reg = MetricsRegistry()
        counter = reg.counter("hammer_total")
        n_threads, n_incs = 8, 5000
        stop = threading.Event()
        seen: list[float] = []

        def _snapshotter():
            while not stop.is_set():
                seen.append(reg.snapshot().value("hammer_total"))

        def _hammer():
            for _ in range(n_incs):
                counter.inc()

        snapper = threading.Thread(target=_snapshotter)
        hammers = [threading.Thread(target=_hammer) for _ in range(n_threads)]
        snapper.start()
        for thread in hammers:
            thread.start()
        for thread in hammers:
            thread.join()
        stop.set()
        snapper.join()
        assert counter.value == n_threads * n_incs
        # Every observed value is a whole number of increments and the
        # sequence never goes backwards (each snapshot is consistent).
        assert all(value == int(value) for value in seen)
        assert seen == sorted(seen)

    def test_attached_registry_detaches_on_gc(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(attach_to=parent)
        child.counter("child_total").inc(7)
        assert parent.snapshot().value("child_total") == 7
        del child
        assert parent.snapshot().value("child_total") == 0

    def test_global_registry_sees_components(self):
        component = MetricsRegistry(attach_to=REGISTRY)
        component.counter("repro_test_component_total").inc(2)
        assert REGISTRY.snapshot().value("repro_test_component_total") == 2


def _snap(**counters) -> MetricsSnapshot:
    reg = MetricsRegistry()
    for name, value in counters.items():
        reg.counter(name).inc(value)
    return reg.snapshot()


class TestSnapshotMerge:
    def test_merge_is_associative_and_commutative(self):
        a, b, c = _snap(x=1, y=2), _snap(x=10), _snap(y=5, z=3)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.data == right.data
        assert a.merge(b).data == b.merge(a).data
        assert left.value("x") == 11
        assert left.value("y") == 7
        assert left.value("z") == 3

    def test_merge_histograms(self):
        def one(values):
            reg = MetricsRegistry()
            hist = reg.histogram("h", buckets=(1.0, 2.0))
            for value in values:
                hist.observe(value)
            return reg.snapshot()

        merged = one([0.5, 1.5]).merge(one([3.0]))
        assert merged.value("h") == 3  # histogram value() is its count
        sample = merged.data["h"]["samples"][()]
        assert sample["counts"] == (1, 1, 1)
        assert sample["sum"] == 5.0

    def test_merge_conflicts_raise(self):
        counter_reg, gauge_reg = MetricsRegistry(), MetricsRegistry()
        counter_reg.counter("m")
        gauge_reg.gauge("m")
        with pytest.raises(ValueError, match="conflicting kinds"):
            counter_reg.snapshot().merge(gauge_reg.snapshot())

        plain, labeled = MetricsRegistry(), MetricsRegistry()
        plain.counter("n").inc()
        labeled.counter("n", labelnames=("op",)).labels(op="x").inc()
        with pytest.raises(ValueError, match="conflicting labelnames"):
            plain.snapshot().merge(labeled.snapshot())

        narrow, wide = MetricsRegistry(), MetricsRegistry()
        narrow.histogram("h", buckets=(1.0,)).observe(0.5)
        wide.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket edges"):
            narrow.snapshot().merge(wide.snapshot())

    def test_with_labels(self):
        relabeled = _snap(jobs_total=4).with_labels(worker="w1")
        assert relabeled.value("jobs_total", worker="w1") == 4
        assert relabeled.data["jobs_total"]["labelnames"] == ("worker",)
        # Per-worker series merge cleanly with the same snapshot under
        # another label value — the coordinator's fleet view.
        fleet = relabeled.merge(_snap(jobs_total=6).with_labels(worker="w2"))
        assert fleet.value("jobs_total", worker="w2") == 6
        with pytest.raises(ValueError, match="already has labels"):
            relabeled.with_labels(worker="again")

    def test_value_of_absent_metric_is_zero(self):
        assert MetricsSnapshot().value("nope_total") == 0.0


class TestPrometheusExposition:
    def test_golden_rendering(self):
        reg = MetricsRegistry()
        reg.counter("repro_rows_total", "Rows processed.").inc(3)
        ops = reg.counter("repro_ops_total", "", labelnames=("op",))
        ops.labels(op="read").inc(2)
        reg.gauge("repro_workers", "Connected workers.").set(1.5)
        reg.histogram("repro_latency_seconds", "Latency.",
                      buckets=(0.1, 1.0)).observe(0.05)
        assert render_prometheus(reg.snapshot()) == (
            "# HELP repro_latency_seconds Latency.\n"
            "# TYPE repro_latency_seconds histogram\n"
            'repro_latency_seconds_bucket{le="0.1"} 1\n'
            'repro_latency_seconds_bucket{le="1"} 1\n'
            'repro_latency_seconds_bucket{le="+Inf"} 1\n'
            "repro_latency_seconds_sum 0.05\n"
            "repro_latency_seconds_count 1\n"
            "# TYPE repro_ops_total counter\n"
            'repro_ops_total{op="read"} 2\n'
            "# HELP repro_rows_total Rows processed.\n"
            "# TYPE repro_rows_total counter\n"
            "repro_rows_total 3\n"
            "# HELP repro_workers Connected workers.\n"
            "# TYPE repro_workers gauge\n"
            "repro_workers 1.5\n"
        )

    def test_parse_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(2)
        weird = reg.counter("b_total", labelnames=("path",))
        weird.labels(path='tricky "quoted",\\comma').inc()
        samples = parse_prometheus(render_prometheus(reg.snapshot()))
        assert samples[("a_total", ())] == 2
        assert samples[("b_total",
                        (("path", 'tricky "quoted",\\comma'),))] == 1

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("<html>not metrics</html>")
        with pytest.raises(ValueError):
            parse_prometheus("# COMMENT nonsense\n")

    def test_metrics_body_is_parseable(self):
        component = MetricsRegistry(attach_to=REGISTRY)
        component.counter("repro_test_body_total").inc(9)
        samples = parse_prometheus(metrics_body().decode("utf-8"))
        assert samples[("repro_test_body_total", ())] == 9
        assert CONTENT_TYPE.startswith("text/plain")


class TestHistogramBuckets:
    def test_edge_semantics(self):
        """An observation exactly on an edge lands in that bucket
        (Prometheus ``v <= le``); past the last edge it lands in +Inf."""
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            hist.observe(value)
        sample = reg.snapshot().data["h"]["samples"][()]
        assert sample["counts"] == (2, 2, 1)  # per-bucket, not cumulative
        assert sample["count"] == 5
        text = render_prometheus(reg.snapshot())
        assert 'h_bucket{le="1"} 2' in text  # cumulative in exposition
        assert 'h_bucket{le="2"} 4' in text
        assert 'h_bucket{le="+Inf"} 5' in text

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))


class TestTracing:
    def test_disabled_tracer_yields_none(self):
        assert not TRACER.enabled
        with TRACER.span("anything") as span:
            assert span is None

    def test_nesting_links_parents(self):
        with TRACER.collect() as spans:
            with TRACER.span("outer") as outer:
                with TRACER.span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                    assert inner.trace_id == outer.trace_id
                    TRACER.event("tick", n=1)
        assert not TRACER.enabled
        assert [s.name for s in spans] == ["inner", "outer"]
        (event,) = spans[0].events
        assert event["name"] == "tick" and event["n"] == 1
        assert spans[1].parent_id is None

    def test_span_into_needs_no_collection(self):
        """The worker-side primitive: spans built from a wire context,
        no active collection required."""
        parent = SpanContext(trace_id="t" * 32, span_id="p" * 16)
        sink: list[Span] = []
        with span_into(sink, "batch", parent=parent) as batch:
            with span_into(sink, "cell", parent=batch):
                pass
        assert [s.name for s in sink] == ["cell", "batch"]
        assert sink[1].parent_id == parent.span_id
        assert sink[0].parent_id == sink[1].span_id
        assert {s.trace_id for s in sink} == {parent.trace_id}

    def test_spans_survive_pickle_and_trace_file(self, tmp_path):
        sink: list[Span] = []
        with span_into(sink, "cell", attrs={"series": "s", "repeat": 1}) as span:
            span.add_event("retry", attempt=2)
        shipped = pickle.loads(pickle.dumps(tuple(sink)))
        assert shipped[0].as_dict() == sink[0].as_dict()
        path = tmp_path / "trace.jsonl"
        assert write_trace(path, sink) == 1
        assert [s.as_dict() for s in load_trace(path)] == \
            [s.as_dict() for s in sink]


def _span_tree_checks(spans, n_cells, executor):
    """Assert cell -> batch -> plan -> experiment linkage for one run."""
    by_id = {s.span_id: s for s in spans}
    by_name: dict[str, list] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    assert len(by_name["experiment"]) == 1
    assert len(by_name["plan"]) == 1
    assert len(by_name["cell"]) == n_cells, (
        f"{executor}: expected a span per cell")
    experiment, plan = by_name["experiment"][0], by_name["plan"][0]
    assert plan.parent_id == experiment.span_id
    assert experiment.parent_id is None
    for batch in by_name["batch"]:
        assert batch.parent_id == plan.span_id
    for cell in by_name["cell"]:
        assert by_id[cell.parent_id].name == "batch"
        assert {"series", "fraction", "repeat"} <= set(cell.attrs)
    assert {s.trace_id for s in spans} == {experiment.trace_id}


class TestExecutorSpans:
    """Span parent-link integrity for a plan run under each executor."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return run_experiment("figure5", TINY)

    @pytest.fixture(scope="class")
    def n_cells(self):
        return len(expand_cells(experiment_plan("figure5", TINY)))

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_local_executors(self, executor, baseline, n_cells):
        with TRACER.collect() as spans:
            result = run_experiment("figure5", TINY, executor=executor, jobs=2)
        _span_tree_checks(spans, n_cells, executor)
        assert pickle.dumps(result.curves) == pickle.dumps(baseline.curves)

    def test_remote_executor_with_status_scrape(self, baseline, n_cells):
        """The acceptance criterion: a 2-worker remote run traces every
        cell with correct parent links, matches serial bit-for-bit, and
        the coordinator status port reports
        ``repro_cells_completed_total`` == the plan's cell count."""
        with Coordinator() as coordinator:
            status = coordinator.serve_status()
            try:
                workers = [FleetWorker(coordinator.address) for _ in range(2)]
                threads = [threading.Thread(target=w.run, daemon=True)
                           for w in workers]
                for thread in threads:
                    thread.start()
                with TRACER.collect() as spans:
                    result = run_experiment("figure5", TINY, executor="remote",
                                            fleet=coordinator)
                with urllib.request.urlopen(status.url + "/metrics",
                                            timeout=10.0) as response:
                    assert response.headers["Content-Type"] == CONTENT_TYPE
                    scraped = parse_prometheus(response.read().decode("utf-8"))
                with urllib.request.urlopen(status.url + "/healthz",
                                            timeout=10.0) as response:
                    health = json.loads(response.read())
            finally:
                status.stop()
        for thread in threads:
            thread.join(timeout=10.0)
        _span_tree_checks(spans, n_cells, "remote")
        # Remote cell spans carry the evaluating worker's identity.
        cell_workers = {s.attrs["worker"] for s in spans if s.name == "cell"}
        assert cell_workers <= {w.worker_id for w in workers}
        assert pickle.dumps(result.curves) == pickle.dumps(baseline.curves)
        assert scraped[("repro_cells_completed_total", ())] == n_cells
        # Per-worker and aggregate fleet series from shipped snapshots.
        fleet_evaluated = scraped[("repro_worker_cells_evaluated_total",
                                   (("worker", "fleet"),))]
        assert fleet_evaluated == n_cells
        assert health["status"] == "ok"
        assert health["coordinator_id"] == coordinator.coordinator_id

    def test_trace_summary_reports_phases_and_workers(self, n_cells):
        with TRACER.collect() as spans:
            run_experiment("figure5", TINY, executor="thread", jobs=2)
        summary = summarize_trace(spans)
        assert summary["spans"] == len(spans)
        assert summary["phases"]["cell"]["count"] == n_cells
        assert sum(w["cells"] for w in summary["workers"].values()) == n_cells
        text = format_trace_summary(summary)
        assert "worker utilization:" in text
        assert "slowest cells:" in text
        assert summarize_trace([]) == {"spans": 0, "wall_seconds": 0.0,
                                       "phases": {}, "slowest_cells": [],
                                       "workers": {}}


class TestStatusServer:
    def test_serves_metrics_and_health(self):
        reg = MetricsRegistry()
        reg.counter("standalone_total").inc(4)
        with StatusServer(metrics=reg.snapshot,
                          health=lambda: {"status": "ok"}) as server:
            with urllib.request.urlopen(server.url + "/metrics",
                                        timeout=10.0) as response:
                samples = parse_prometheus(response.read().decode("utf-8"))
            assert samples[("standalone_total", ())] == 4
            with urllib.request.urlopen(server.url + "/healthz",
                                        timeout=10.0) as response:
                assert json.loads(response.read()) == {"status": "ok"}
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/nope", timeout=10.0)
            assert err.value.code == 404


class TestStructuredLogging:
    def test_json_formatter_round_trip(self):
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonFormatter())
        logger = logging.getLogger("repro.test.obs")
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
        try:
            logger.info("served %d cells", 12, extra={"worker": "w1"})
            try:
                raise RuntimeError("boom")
            except RuntimeError:
                logger.exception("failed")
        finally:
            logger.removeHandler(handler)
        lines = stream.getvalue().strip().splitlines()
        first, second = (json.loads(line) for line in lines)
        assert first["message"] == "served 12 cells"
        assert first["level"] == "INFO"
        assert first["logger"] == "repro.test.obs"
        assert first["worker"] == "w1"
        assert first["ts"].endswith("+00:00")
        assert "RuntimeError: boom" in second["exc_info"]

    def test_configure_logging_validates_and_is_idempotent(self):
        root = logging.getLogger()
        saved_handlers, saved_level = list(root.handlers), root.level
        try:
            stream = io.StringIO()
            configure_logging(fmt="json", level="DEBUG", stream=stream)
            configure_logging(fmt="json", level="WARNING", stream=stream)
            assert len(root.handlers) == 1  # replaced, not stacked
            logging.getLogger("repro.test.cfg").warning("hello")
            assert json.loads(stream.getvalue())["message"] == "hello"
            with pytest.raises(ValueError, match="log format"):
                configure_logging(fmt="yaml")
            with pytest.raises(ValueError, match="log level"):
                configure_logging(level="LOUD")
        finally:
            for handler in list(root.handlers):
                root.removeHandler(handler)
            for handler in saved_handlers:
                root.addHandler(handler)
            root.setLevel(saved_level)
