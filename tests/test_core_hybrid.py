"""Tests for repro.core.hybrid (the paper's contribution)."""

import numpy as np
import pytest

from repro.analytical import FmmAnalyticalModel, StencilAnalyticalModel
from repro.core.hybrid import HybridPerformanceModel
from repro.ml import ExtraTreesRegressor, LinearRegression
from repro.ml.metrics import mean_absolute_percentage_error
from repro.utils.validation import NotFittedError


@pytest.fixture(scope="module")
def stencil_setup(small_stencil_dataset):
    data = small_stencil_dataset
    train, test = data.train_test_indices(train_fraction=0.1, random_state=0)
    return data, train, test


def _hybrid(data, **kwargs):
    defaults = dict(
        analytical_model=StencilAnalyticalModel(),
        feature_names=data.feature_names,
        ml_model=ExtraTreesRegressor(n_estimators=10, random_state=0),
        random_state=0,
    )
    defaults.update(kwargs)
    return HybridPerformanceModel(**defaults)


class TestFitPredict:
    def test_basic_fit_predict(self, stencil_setup):
        data, train, test = stencil_setup
        model = _hybrid(data).fit(data.X[train], data.y[train])
        preds = model.predict(data.X[test])
        assert preds.shape == (len(test),)
        assert np.all(np.isfinite(preds)) and np.all(preds > 0)

    def test_hybrid_beats_analytical_alone(self, stencil_setup):
        data, train, test = stencil_setup
        model = _hybrid(data).fit(data.X[train], data.y[train])
        parts = model.predict_components(data.X[test])
        hybrid_mape = mean_absolute_percentage_error(data.y[test], parts["final"])
        am_mape = mean_absolute_percentage_error(data.y[test], parts["analytical"])
        assert hybrid_mape < am_mape

    def test_hybrid_beats_pure_ml_at_small_training(self, small_stencil_dataset):
        data = small_stencil_dataset
        from repro.ml import Pipeline, StandardScaler

        mapes_ml, mapes_hy = [], []
        for seed in range(3):
            train, test = data.train_test_indices(train_size=8, random_state=seed)
            ml = Pipeline(steps=[("s", StandardScaler()),
                                 ("m", ExtraTreesRegressor(n_estimators=10, random_state=seed))])
            ml.fit(data.X[train], data.y[train])
            hy = _hybrid(data, random_state=seed).fit(data.X[train], data.y[train])
            mapes_ml.append(mean_absolute_percentage_error(data.y[test], ml.predict(data.X[test])))
            mapes_hy.append(mean_absolute_percentage_error(data.y[test], hy.predict(data.X[test])))
        assert np.mean(mapes_hy) < np.mean(mapes_ml)

    def test_deterministic_given_seed(self, stencil_setup):
        data, train, test = stencil_setup
        p1 = _hybrid(data).fit(data.X[train], data.y[train]).predict(data.X[test])
        p2 = _hybrid(data).fit(data.X[train], data.y[train]).predict(data.X[test])
        np.testing.assert_array_equal(p1, p2)

    def test_default_ml_model_is_extra_trees(self, stencil_setup):
        data, train, _ = stencil_setup
        model = HybridPerformanceModel(
            analytical_model=StencilAnalyticalModel(),
            feature_names=data.feature_names, random_state=0,
        ).fit(data.X[train][:20], data.y[train][:20])
        assert isinstance(model.stacked_model_, ExtraTreesRegressor)

    def test_works_with_fmm_models(self, small_fmm_dataset):
        data = small_fmm_dataset
        train, test = data.train_test_indices(train_fraction=0.4, random_state=0)
        model = HybridPerformanceModel(
            analytical_model=FmmAnalyticalModel(),
            feature_names=data.feature_names,
            ml_model=ExtraTreesRegressor(n_estimators=20, random_state=0),
            random_state=0,
        ).fit(data.X[train], data.y[train])
        mape = mean_absolute_percentage_error(data.y[test], model.predict(data.X[test]))
        am_mape = mean_absolute_percentage_error(
            data.y[test], FmmAnalyticalModel().predict(data.X[test], data.feature_names))
        assert mape < am_mape


class TestOptions:
    def test_aggregation_mixes_analytical_and_stacked(self, stencil_setup):
        data, train, test = stencil_setup
        model = _hybrid(data, aggregate_analytical=True, analytical_weight=0.5)
        model.fit(data.X[train], data.y[train])
        parts = model.predict_components(data.X[test])
        np.testing.assert_allclose(
            parts["final"], 0.5 * parts["analytical"] + 0.5 * parts["stacked"])

    def test_weight_zero_equals_stacked_only(self, stencil_setup):
        data, train, test = stencil_setup
        model = _hybrid(data, aggregate_analytical=True, analytical_weight=0.0)
        model.fit(data.X[train], data.y[train])
        parts = model.predict_components(data.X[test])
        np.testing.assert_allclose(parts["final"], parts["stacked"])

    def test_bagging_wrapper(self, stencil_setup):
        from repro.ml.bagging import BaggingRegressor

        data, train, test = stencil_setup
        model = _hybrid(data, bagging_estimators=4,
                        ml_model=LinearRegression())
        model.fit(data.X[train], data.y[train])
        assert isinstance(model.stacked_model_, BaggingRegressor)
        assert model.predict(data.X[test]).shape == (len(test),)

    def test_linear_analytical_feature_variant(self, stencil_setup):
        data, train, test = stencil_setup
        model = _hybrid(data, log_analytical_feature=False)
        model.fit(data.X[train], data.y[train])
        assert np.all(np.isfinite(model.predict(data.X[test])))

    def test_standardize_off(self, stencil_setup):
        data, train, test = stencil_setup
        model = _hybrid(data, standardize=False).fit(data.X[train], data.y[train])
        assert model.scaler_ is None
        assert model.predict(data.X[test]).shape == (len(test),)


class TestValidation:
    def test_predict_before_fit(self, small_stencil_dataset):
        with pytest.raises(NotFittedError):
            _hybrid(small_stencil_dataset).predict(small_stencil_dataset.X[:3])

    def test_wrong_analytical_model_type(self, stencil_setup):
        data, train, _ = stencil_setup
        model = HybridPerformanceModel(analytical_model="not-a-model",
                                       feature_names=data.feature_names)
        with pytest.raises(TypeError):
            model.fit(data.X[train], data.y[train])

    def test_feature_name_count_mismatch(self, stencil_setup):
        data, train, _ = stencil_setup
        model = HybridPerformanceModel(analytical_model=StencilAnalyticalModel(),
                                       feature_names=["I", "J"])
        with pytest.raises(ValueError):
            model.fit(data.X[train], data.y[train])

    def test_invalid_weight(self, stencil_setup):
        data, train, _ = stencil_setup
        model = _hybrid(data, aggregate_analytical=True, analytical_weight=1.5)
        with pytest.raises(ValueError):
            model.fit(data.X[train], data.y[train])

    def test_predict_feature_count_mismatch(self, stencil_setup):
        data, train, _ = stencil_setup
        model = _hybrid(data).fit(data.X[train], data.y[train])
        with pytest.raises(ValueError):
            model.predict(data.X[train][:, :2])
