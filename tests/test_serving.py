"""Tests for the serving tier (`repro.serving`): model persistence + server.

Covers the packed-forest arena round trip, the pickle-free model blob
format (encode/decode bit-identity for both factory kinds), plan
publishing (including non-servable series being skipped, not fatal),
the ``models/`` key family of the store, and the HTTP model server:
bit-identical ``/predict``, ``/recommend`` argmin, failure statuses
(400/404/503), integrity accounting for corrupt blobs, and
value-preserving micro-batching under concurrency.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.datasets import DatasetStore
from repro.experiments.plan import build_factory, experiment_plan
from repro.experiments.runner import ExperimentSettings
from repro.experiments.scheduler import _resolve_data, run_plan
from repro.ml._packed import PackedForest
from repro.ml.forest import ExtraTreesRegressor
from repro.ml.pipeline import Pipeline
from repro.ml.preprocessing import StandardScaler
from repro.serving import (
    MicroBatcher,
    ModelNotServableError,
    ModelServer,
    PackedRegressor,
    decode_model,
    encode_model,
    publish_plan_models,
)

SETTINGS = ExperimentSettings.quick()


@pytest.fixture(scope="module")
def published():
    """A quick figure5 plan published into a fresh in-memory store."""
    plan = experiment_plan("figure5", SETTINGS)
    store = DatasetStore("memory://")
    dataset, caches = _resolve_data(plan, store)
    outcome = publish_plan_models(plan, dataset, caches, store)
    return plan, store, dataset, caches, outcome


def _refit(plan, dataset, caches, label):
    spec = next(s for s in plan.series if s.label == label)
    factory = build_factory(spec.factory, dataset,
                            caches.get(spec.factory.analytical))
    model = factory(plan.random_state)
    model.fit(dataset.X, dataset.y)
    return model


def _post(url, body, timeout=10):
    req = urllib.request.Request(url, data=json.dumps(body).encode(),
                                 headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read())


class TestPackedForestState:
    def test_state_round_trip_is_bit_identical(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(80, 3))
        y = X[:, 0] * 3.0 + rng.normal(scale=0.1, size=80)
        forest = ExtraTreesRegressor(n_estimators=5, random_state=0).fit(X, y)
        packed = forest.packed_ or PackedForest(
            [est.tree_ for est in forest.estimators_])
        rebuilt = PackedForest.from_state(packed.state())
        assert rebuilt.n_trees == packed.n_trees
        assert np.array_equal(rebuilt.predict(X), packed.predict(X))
        assert np.array_equal(rebuilt.predict_std(X), packed.predict_std(X))

    def test_missing_array_is_rejected(self):
        state = {"roots": np.array([0])}
        with pytest.raises(ValueError, match="missing array"):
            PackedForest.from_state(state)

    def test_out_of_range_children_are_rejected(self):
        n = 3
        state = {
            "roots": np.array([0]),
            "feature": np.array([0, -1, -1]),
            "threshold": np.zeros(n),
            "value": np.zeros(n),
            "left": np.array([1, -1, -1]),
            "right": np.array([99, -1, -1]),  # beyond the arena
        }
        with pytest.raises(ValueError, match="out-of-range"):
            PackedForest.from_state(state)

    def test_shape_mismatch_is_rejected(self):
        state = {
            "roots": np.array([0]),
            "feature": np.array([-1, -1]),
            "threshold": np.zeros(1),  # wrong length
            "value": np.zeros(2),
            "left": np.full(2, -1),
            "right": np.full(2, -1),
        }
        with pytest.raises(ValueError, match="shape"):
            PackedForest.from_state(state)


class TestModelBlobFormat:
    def test_pipeline_round_trip_is_bit_identical(self, published):
        plan, store, dataset, caches, _ = published
        original = _refit(plan, dataset, caches, "extra_trees")
        served = decode_model(encode_model(original))
        assert served.kind == "ml_pipeline"
        assert np.array_equal(served.predict_rows(dataset.X),
                              original.predict(dataset.X))

    def test_hybrid_round_trip_is_bit_identical(self, published):
        plan, store, dataset, caches, _ = published
        original = _refit(plan, dataset, caches, "hybrid")
        served = decode_model(encode_model(original, analytical_key="stencil"))
        assert served.kind == "hybrid"
        assert served.feature_names == tuple(dataset.feature_names)
        assert np.array_equal(served.predict_rows(dataset.X),
                              original.predict(dataset.X))

    def test_decoded_model_is_prediction_only(self, published):
        plan, store, dataset, caches, _ = published
        served = decode_model(store.model_bytes(plan.fingerprint, "extra_trees"))
        regressor = served.model.steps_[-1][1]
        assert isinstance(regressor, PackedRegressor)
        with pytest.raises(TypeError, match="prediction-only"):
            regressor.fit(dataset.X, dataset.y)

    def test_hybrid_without_analytical_key_is_rejected(self, published):
        plan, store, dataset, caches, _ = published
        original = _refit(plan, dataset, caches, "hybrid")
        with pytest.raises(ValueError, match="analytical_key"):
            encode_model(original)

    def test_mismatched_analytical_key_is_rejected(self, published):
        plan, store, dataset, caches, _ = published
        original = _refit(plan, dataset, caches, "hybrid")
        with pytest.raises(ValueError, match="rebuilds"):
            encode_model(original, analytical_key="fmm")

    def test_knn_pipeline_is_not_servable(self):
        from repro.ml.neighbors import KNeighborsRegressor

        rng = np.random.default_rng(1)
        X = rng.uniform(size=(40, 2))
        y = X.sum(axis=1)
        pipe = Pipeline(steps=[("scale", StandardScaler()),
                               ("model", KNeighborsRegressor())]).fit(X, y)
        with pytest.raises(ModelNotServableError, match="packed-arena"):
            encode_model(pipe)

    def test_unknown_format_version_is_rejected(self, published):
        plan, store, *_ = published
        blob = store.model_bytes(plan.fingerprint, "hybrid")
        import io

        with np.load(io.BytesIO(blob)) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["format"] = np.array(99)
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        with pytest.raises(ValueError, match="format version 99"):
            decode_model(buf.getvalue())


class TestPublishing:
    def test_publish_writes_every_servable_series(self, published):
        plan, store, _, _, outcome = published
        assert sorted(outcome["published"]) == ["extra_trees", "hybrid"]
        assert outcome["skipped"] == {}
        for series in outcome["published"]:
            assert store.has_model(plan.fingerprint, series)
        listed = store.list_models(plan.fingerprint)
        assert sorted(series for series, _ in listed) == ["extra_trees", "hybrid"]

    def test_published_predictions_match_refit(self, published):
        plan, store, dataset, caches, _ = published
        for label in ("extra_trees", "hybrid"):
            served = decode_model(store.model_bytes(plan.fingerprint, label))
            original = _refit(plan, dataset, caches, label)
            assert np.array_equal(served.predict_rows(dataset.X[:64]),
                                  original.predict(dataset.X[:64]))

    def test_non_servable_series_is_skipped_with_reason(self):
        plan = experiment_plan("ablation_ml_backend", SETTINGS)
        labels = [s.label for s in plan.series]
        assert "hybrid_knn" in labels and "hybrid_bagged_tree" in labels
        store = DatasetStore("memory://")
        dataset, caches = _resolve_data(plan, store)
        outcome = publish_plan_models(plan, dataset, caches, store)
        assert "hybrid_knn" in outcome["skipped"]
        assert "hybrid_bagged_tree" in outcome["skipped"]
        assert "hybrid_extra_trees" in outcome["published"]
        assert not store.has_model(plan.fingerprint, "hybrid_knn")

    def test_model_key_validates_its_parts(self):
        assert (DatasetStore.model_key("abc123", "hybrid")
                == "models/hybrid-abc123.npz")
        with pytest.raises(ValueError):
            DatasetStore.model_key("has-dash", "hybrid")
        with pytest.raises(ValueError):
            DatasetStore.model_key("abc123", "bad/series")
        with pytest.raises(ValueError):
            DatasetStore.model_key("", "hybrid")

    def test_run_plan_publish_models_requires_store(self):
        plan = experiment_plan("figure5", SETTINGS)
        with pytest.raises(ValueError, match="store"):
            run_plan(plan, publish_models=True)

    def test_run_plan_publish_models_rejects_dataset_override(self, published):
        plan, store, dataset, *_ = published
        with pytest.raises(ValueError, match="dataset override"):
            run_plan(plan, store=store, dataset=dataset, publish_models=True)


class TestModelServer:
    def test_predict_is_bit_identical_to_in_process_model(self, published):
        plan, store, dataset, caches, _ = published
        rows = dataset.X[:16]
        with ModelServer(store) as server:
            for label in ("extra_trees", "hybrid"):
                original = _refit(plan, dataset, caches, label)
                out = _post(server.url + "predict",
                            {"plan": plan.fingerprint, "series": label,
                             "rows": rows.tolist()})
                served = np.array(out["predictions"])
                assert np.array_equal(served, original.predict(rows)), label

    def test_recommend_answers_the_argmin(self, published):
        plan, store, dataset, *_ = published
        rows = dataset.X[:24]
        with ModelServer(store) as server:
            out = _post(server.url + "recommend",
                        {"plan": plan.fingerprint, "series": "hybrid",
                         "rows": rows.tolist()})
            predictions = np.array(out["predictions"])
            assert out["index"] == int(np.argmin(predictions))
            assert out["row"] == rows[out["index"]].tolist()
            assert out["predicted"] == predictions[out["index"]]

    def test_health_stats_and_models_endpoints(self, published):
        plan, store, dataset, *_ = published
        with ModelServer(store) as server:
            assert _get(server.url + "healthz")["status"] == "ok"
            _post(server.url + "predict",
                  {"plan": plan.fingerprint, "series": "hybrid",
                   "rows": dataset.X[:4].tolist()})
            stats = _get(server.url + "stats")
            assert stats["predictions"] == 4
            assert stats["model_loads"] == 1
            models = _get(server.url + "models")
            assert f"{plan.fingerprint}/hybrid" in models["loaded"]
            available = {(m["plan"], m["series"]) for m in models["available"]}
            assert (plan.fingerprint, "hybrid") in available

    def test_unknown_model_is_404(self, published):
        _, store, dataset, *_ = published
        with ModelServer(store) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(server.url + "predict",
                      {"plan": "feedc0de", "series": "hybrid",
                       "rows": dataset.X[:2].tolist()})
            assert err.value.code == 404

    def test_malformed_requests_are_400(self, published):
        plan, store, dataset, *_ = published
        ok = {"plan": plan.fingerprint, "series": "hybrid",
              "rows": dataset.X[:2].tolist()}
        with ModelServer(store) as server:
            for body in (
                {**ok, "rows": [[1.0, 2.0]]},          # wrong width
                {**ok, "rows": []},                     # empty
                {**ok, "rows": [["a", "b", "c"]]},      # non-numeric
                {"series": "hybrid", "rows": ok["rows"]},  # missing plan
            ):
                with pytest.raises(urllib.error.HTTPError) as err:
                    _post(server.url + "predict", body)
                assert err.value.code == 400, body
            req = urllib.request.Request(
                server.url + "predict", data=b"{not json",
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=10)
            assert err.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "nosuch")
            assert err.value.code == 404

    def test_corrupt_blob_is_503_and_counted(self):
        plan = experiment_plan("figure5", SETTINGS)
        store = DatasetStore("memory://")
        dataset, caches = _resolve_data(plan, store)
        publish_plan_models(plan, dataset, caches, store)
        key = store.model_key(plan.fingerprint, "hybrid")
        raw = bytearray(store.backend._read(key))
        raw[len(raw) // 2] ^= 0xFF
        store.backend._write(key, bytes(raw))
        with ModelServer(store) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(server.url + "predict",
                      {"plan": plan.fingerprint, "series": "hybrid",
                       "rows": dataset.X[:2].tolist()})
            assert err.value.code == 503
            stats = _get(server.url + "stats")
            assert stats["integrity_failures"] == 1
            assert stats["store_integrity_failures"] == 1
        # The corrupt blob was discarded: the next publish repairs the key.
        assert not store.backend.exists(key)

    def test_concurrent_requests_batch_and_preserve_values(self, published):
        plan, store, dataset, caches, _ = published
        original = _refit(plan, dataset, caches, "hybrid")
        chunks = [dataset.X[i * 8:(i + 1) * 8] for i in range(6)]
        expected = [original.predict(chunk) for chunk in chunks]
        results: dict[int, np.ndarray] = {}
        errors: list[Exception] = []
        with ModelServer(store) as server:
            def worker(i):
                try:
                    out = _post(server.url + "predict",
                                {"plan": plan.fingerprint, "series": "hybrid",
                                 "rows": chunks[i].tolist()})
                    results[i] = np.array(out["predictions"])
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(chunks))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            stats = _get(server.url + "stats")
        assert errors == []
        for i, chunk_expected in enumerate(expected):
            assert np.array_equal(results[i], chunk_expected), i
        assert stats["batched_rows"] == sum(len(c) for c in chunks)
        assert stats["batches"] >= 1


class TestMicroBatcher:
    class _CountingModel:
        """Stand-in model recording the batch shapes it was asked for."""

        def __init__(self):
            self.calls: list[int] = []
            self.lock = threading.Lock()

        def predict_rows(self, rows):
            with self.lock:
                self.calls.append(len(rows))
            return np.asarray(rows)[:, 0] * 2.0

    def test_single_caller_runs_immediately(self):
        batcher = MicroBatcher()
        model = self._CountingModel()
        rows = np.arange(6.0).reshape(3, 2)
        out = batcher.predict("k", model, rows)
        assert np.array_equal(out, rows[:, 0] * 2.0)
        assert model.calls == [3]
        assert batcher.stats["batches"] == 1

    def test_concurrent_callers_coalesce_without_changing_values(self):
        batcher = MicroBatcher()
        model = self._CountingModel()
        barrier = threading.Barrier(8)
        results: dict[int, np.ndarray] = {}

        def worker(i):
            rows = np.full((4, 2), float(i))
            barrier.wait()
            results[i] = batcher.predict("k", model, rows)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        for i in range(8):
            assert np.array_equal(results[i], np.full(4, 2.0 * i)), i
        assert sum(model.calls) == 32
        assert batcher.stats["batched_rows"] == 32

    def test_model_error_propagates_to_every_caller(self):
        class Exploding:
            def predict_rows(self, rows):
                raise ValueError("boom")

        batcher = MicroBatcher()
        with pytest.raises(ValueError, match="boom"):
            batcher.predict("k", Exploding(), np.zeros((2, 2)))
