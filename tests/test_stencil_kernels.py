"""Tests for repro.stencil.kernels."""

import numpy as np
import pytest

from repro.stencil.grid import Grid3D
from repro.stencil.kernels import (
    flops_per_point,
    jacobi_iterate,
    stencil27_sweep,
    stencil7_reference,
    stencil7_sweep,
)


@pytest.fixture()
def padded_field():
    rng = np.random.default_rng(0)
    src = rng.random((8, 9, 10))
    return src, np.zeros_like(src)


class TestStencil7:
    def test_matches_reference_loop(self, padded_field):
        src, dst_vec = padded_field
        dst_ref = np.zeros_like(src)
        stencil7_sweep(src, dst_vec, 0.4, 0.1)
        stencil7_reference(src, dst_ref, 0.4, 0.1)
        np.testing.assert_allclose(dst_vec[1:-1, 1:-1, 1:-1], dst_ref[1:-1, 1:-1, 1:-1])

    def test_returns_point_count(self, padded_field):
        src, dst = padded_field
        assert stencil7_sweep(src, dst, 0.4, 0.1) == 6 * 7 * 8

    def test_ghost_layer_untouched(self, padded_field):
        src, dst = padded_field
        dst[...] = -1.0
        stencil7_sweep(src, dst, 0.4, 0.1)
        assert np.all(dst[0, :, :] == -1.0)
        assert np.all(dst[:, :, -1] == -1.0)

    def test_constant_field_is_preserved_when_weights_sum_to_one(self):
        src = np.full((6, 6, 6), 3.0)
        dst = np.zeros_like(src)
        stencil7_sweep(src, dst, 0.4, 0.1)  # 0.4 + 6*0.1 = 1.0
        np.testing.assert_allclose(dst[1:-1, 1:-1, 1:-1], 3.0)

    def test_identical_arrays_rejected(self, padded_field):
        src, _ = padded_field
        with pytest.raises(ValueError, match="distinct"):
            stencil7_sweep(src, src, 0.4, 0.1)

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            stencil7_sweep(np.zeros((2, 5, 5)), np.zeros((2, 5, 5)), 0.4, 0.1)
        with pytest.raises(ValueError):
            stencil7_sweep(np.zeros((5, 5, 5)), np.zeros((5, 5, 4)), 0.4, 0.1)
        with pytest.raises(ValueError):
            stencil7_sweep(np.zeros((5, 5)), np.zeros((5, 5)), 0.4, 0.1)


class TestStencil27:
    def test_constant_preservation(self):
        src = np.full((5, 5, 5), 2.0)
        dst = np.zeros_like(src)
        # center + 6 faces + 12 edges + 8 corners with weights summing to 1.
        w_face, w_edge, w_corner = 0.05, 0.02, 0.01
        w_center = 1.0 - 6 * w_face - 12 * w_edge - 8 * w_corner
        stencil27_sweep(src, dst, (w_center, w_face, w_edge, w_corner))
        np.testing.assert_allclose(dst[1:-1, 1:-1, 1:-1], 2.0)

    def test_reduces_to_7point_when_corner_edge_weights_zero(self):
        rng = np.random.default_rng(1)
        src = rng.random((6, 6, 6))
        dst27 = np.zeros_like(src)
        dst7 = np.zeros_like(src)
        stencil27_sweep(src, dst27, (0.4, 0.1, 0.0, 0.0))
        stencil7_sweep(src, dst7, 0.4, 0.1)
        np.testing.assert_allclose(dst27[1:-1, 1:-1, 1:-1], dst7[1:-1, 1:-1, 1:-1])


class TestJacobiIterate:
    def test_zero_timesteps_is_identity(self):
        grid = Grid3D(shape=(4, 4, 4)).fill_random(0)
        before = grid.data.copy()
        jacobi_iterate(grid, 0)
        np.testing.assert_array_equal(grid.data, before)

    def test_heat_equation_smooths_towards_mean(self):
        grid = Grid3D(shape=(8, 8, 8))
        grid.fill_function(lambda x, y, z: np.where(x > 0.5, 1.0, 0.0))
        var_before = grid.interior.var()
        jacobi_iterate(grid, 10, c0=0.4, c1=0.1)
        assert grid.interior.var() < var_before

    def test_result_also_returned(self):
        grid = Grid3D(shape=(4, 4, 4)).fill_random(0)
        out = jacobi_iterate(grid, 3)
        assert out is grid.data

    def test_negative_timesteps(self):
        with pytest.raises(ValueError):
            jacobi_iterate(Grid3D(shape=(3, 3, 3)), -1)


class TestFlopsPerPoint:
    def test_values(self):
        assert flops_per_point(7) == 8
        assert flops_per_point(27) == 30
        with pytest.raises(ValueError):
            flops_per_point(9)
