"""Tests for repro.fmm.perf_sim."""

import numpy as np
import pytest

from repro.fmm.config import FmmConfig
from repro.fmm.perf_sim import FmmPerformanceSimulator
from repro.machine import small_embedded_node


@pytest.fixture(scope="module")
def sim():
    return FmmPerformanceSimulator(noise=0.0)


class TestBasics:
    def test_positive_finite_times(self, sim):
        t = sim.time(FmmConfig(threads=1, n_particles=8192, particles_per_leaf=64, order=6))
        assert np.isfinite(t) and t > 0

    def test_deterministic(self):
        sim = FmmPerformanceSimulator(random_state=3)
        cfg = FmmConfig(threads=4, n_particles=4096, particles_per_leaf=32, order=5)
        assert sim.time(cfg) == sim.time(cfg)

    def test_phase_breakdown_sums_to_total(self, sim):
        run = sim.run(FmmConfig(threads=2, n_particles=8192, particles_per_leaf=64, order=6))
        assert run.seconds == pytest.approx(sum(run.phase_seconds.values()) * run.noise_factor)
        assert set(run.phase_seconds) == {"tree", "traversal", "p2m", "m2m",
                                          "m2l", "l2l", "l2p", "p2p"}

    def test_times_vectorized(self, sim):
        configs = [FmmConfig(threads=1, n_particles=4096, particles_per_leaf=64, order=4),
                   FmmConfig(threads=8, n_particles=4096, particles_per_leaf=64, order=4)]
        times = sim.times(configs)
        assert times.shape == (2,)
        assert times[1] < times[0]


class TestPhysicalShape:
    def test_m2l_dominates_small_leaves_p2p_dominates_large(self, sim):
        small_q = sim.run(FmmConfig(threads=1, n_particles=16384, particles_per_leaf=8, order=8))
        large_q = sim.run(FmmConfig(threads=1, n_particles=16384, particles_per_leaf=512, order=4))
        assert small_q.dominant_phase == "m2l"
        assert large_q.dominant_phase == "p2p"

    def test_time_grows_strongly_with_order(self, sim):
        times = [sim.time(FmmConfig(threads=1, n_particles=8192, particles_per_leaf=64, order=k))
                 for k in (2, 6, 12)]
        assert times[0] < times[1] < times[2]
        assert times[2] / times[0] > 20.0

    def test_time_roughly_linear_in_n(self, sim):
        t1 = sim.time(FmmConfig(threads=1, n_particles=4096, particles_per_leaf=64, order=6))
        t2 = sim.time(FmmConfig(threads=1, n_particles=16384, particles_per_leaf=64, order=6))
        ratio = t2 / t1
        assert 2.0 < ratio < 10.0   # N grows 4x; FMM is O(N) up to tree effects

    def test_optimal_leaf_size_is_interior(self, sim):
        # At moderate expansion order the M2L cost (shrinking with q) and the
        # P2P cost (growing with q) cross, so time-vs-q dips in the interior.
        qs = [8, 32, 128, 512]
        times = [sim.time(FmmConfig(threads=1, n_particles=16384, particles_per_leaf=q, order=3))
                 for q in qs]
        best = int(np.argmin(times))
        assert best not in (0, len(qs) - 1)

    def test_thread_scaling_sublinear(self, sim):
        t1 = sim.time(FmmConfig(threads=1, n_particles=16384, particles_per_leaf=64, order=8))
        t16 = sim.time(FmmConfig(threads=16, n_particles=16384, particles_per_leaf=64, order=8))
        speedup = t1 / t16
        assert 1.5 < speedup < 16.0

    def test_slower_machine_is_slower(self):
        cfg = FmmConfig(threads=1, n_particles=8192, particles_per_leaf=64, order=6)
        fast = FmmPerformanceSimulator(noise=0.0).time(cfg)
        slow = FmmPerformanceSimulator(machine=small_embedded_node(), noise=0.0).time(cfg)
        assert slow > fast

    def test_noise_magnitude_bounded(self):
        cfg = FmmConfig(threads=1, n_particles=8192, particles_per_leaf=64, order=6)
        noisy = FmmPerformanceSimulator(noise=0.05, random_state=0).time(cfg)
        clean = FmmPerformanceSimulator(noise=0.0).time(cfg)
        assert abs(np.log(noisy / clean)) < 0.2

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            FmmPerformanceSimulator(noise=-0.1)
