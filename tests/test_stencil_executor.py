"""Tests for repro.stencil.executor (real execution path)."""

import numpy as np
import pytest

from repro.stencil.config import StencilConfig
from repro.stencil.executor import MeasuredRun, StencilExecutor


class TestStencilExecutor:
    def test_run_small_config(self):
        executor = StencilExecutor(timesteps=1, repeats=1)
        run = executor.run(StencilConfig(I=16, J=16, K=16))
        assert run.seconds > 0
        assert run.points_updated == 16 ** 3
        assert run.flops == 16 ** 3 * 8
        assert run.gflops > 0
        assert run.points_per_second > 0
        assert run.effective_bandwidth_bytes_per_s > 0

    def test_blocked_config_runs(self):
        executor = StencilExecutor(timesteps=1, repeats=1)
        run = executor.run(StencilConfig(I=16, J=16, K=16, bi=4, bj=8, bk=16))
        assert run.seconds > 0

    def test_27_point_config_runs(self):
        executor = StencilExecutor(timesteps=1, repeats=1)
        run = executor.run(StencilConfig(I=12, J=12, K=12, stencil_points=27))
        assert run.flops == 12 ** 3 * 30

    def test_timesteps_scale_points(self):
        executor = StencilExecutor(timesteps=3, repeats=1)
        run = executor.run(StencilConfig(I=8, J=8, K=8))
        assert run.points_updated == 3 * 8 ** 3

    def test_memory_cap_enforced(self):
        executor = StencilExecutor(max_elements=1000)
        with pytest.raises(ValueError, match="cap"):
            executor.run(StencilConfig(I=64, J=64, K=64))

    def test_run_many_and_measure_times(self):
        executor = StencilExecutor(timesteps=1, repeats=1)
        configs = [StencilConfig(I=8, J=8, K=8), StencilConfig(I=12, J=12, K=12)]
        runs = executor.run_many(configs)
        assert len(runs) == 2 and all(isinstance(r, MeasuredRun) for r in runs)
        times = executor.measure_times(configs)
        assert times.shape == (2,)
        assert np.all(times > 0)

    def test_larger_grids_take_longer(self):
        executor = StencilExecutor(timesteps=2, repeats=2)
        small = executor.run(StencilConfig(I=16, J=16, K=16)).seconds
        large = executor.run(StencilConfig(I=64, J=64, K=64)).seconds
        assert large > small

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StencilExecutor(timesteps=0)
        with pytest.raises(ValueError):
            StencilExecutor(repeats=0)
