"""Tests for repro.analytical.fmm_model (Section IV-B)."""

import numpy as np
import pytest

from repro.analytical.fmm_model import FmmAnalyticalModel
from repro.fmm.config import FmmConfig


@pytest.fixture(scope="module")
def model():
    return FmmAnalyticalModel()


class TestEquations:
    def test_p2p_flop_term_matches_eq8(self, model):
        # With enormous q the P2P flop term dominates everything:
        # T ~ 27 q N tc.
        cfg = FmmConfig(threads=1, n_particles=100_000, particles_per_leaf=50_000, order=2)
        machine = model.machine
        expected_p2p = 27.0 * 50_000 * 100_000 * machine.tc
        phases = model.predict_phases(cfg)
        assert phases["p2p_flops"] == pytest.approx(expected_p2p)

    def test_m2l_flop_term_matches_eq9(self, model):
        cfg = FmmConfig(threads=1, n_particles=10_000, particles_per_leaf=10, order=10)
        expected = 189.0 * 10_000 * 10.0 ** 6 / 10.0 * model.machine.tc
        assert model.predict_phases(cfg)["m2l_flops"] == pytest.approx(expected)

    def test_memory_terms_positive_and_scale_with_n(self, model):
        small = model.predict_phases(FmmConfig(threads=1, n_particles=4096,
                                               particles_per_leaf=64, order=6))
        large = model.predict_phases(FmmConfig(threads=1, n_particles=16384,
                                               particles_per_leaf=64, order=6))
        for key in ("p2p_mem", "m2l_mem"):
            assert small[key] > 0
            assert large[key] == pytest.approx(4.0 * small[key], rel=1e-6)

    def test_total_is_sum_of_phase_rooflines(self, model):
        cfg = FmmConfig(threads=1, n_particles=8192, particles_per_leaf=64, order=6)
        phases = model.predict_phases(cfg)
        expected = (max(phases["p2p_flops"], phases["p2p_mem"])
                    + max(phases["m2l_flops"], phases["m2l_mem"]))
        assert model.predict_config(cfg) == pytest.approx(expected)

    def test_expansion_phases_add_cost_when_enabled(self):
        cfg = FmmConfig(threads=1, n_particles=8192, particles_per_leaf=64, order=6)
        base = FmmAnalyticalModel().predict_config(cfg)
        extended = FmmAnalyticalModel(include_expansion_phases=True).predict_config(cfg)
        assert extended > base


class TestShape:
    def test_order_dependence_is_k6_when_m2l_dominates(self, model):
        t_small = model.predict_config(FmmConfig(threads=1, n_particles=16384,
                                                 particles_per_leaf=8, order=4))
        t_large = model.predict_config(FmmConfig(threads=1, n_particles=16384,
                                                 particles_per_leaf=8, order=8))
        assert t_large / t_small == pytest.approx(2.0 ** 6, rel=0.3)

    def test_optimal_q_exists_at_low_order(self, model):
        # At low expansion order the P2P term (growing with q) and the M2L
        # term (shrinking with q) cross, giving an interior optimum; at high
        # order the paper's model is M2L-dominated everywhere.
        qs = [8, 16, 32, 64, 128, 256, 512]
        times = [model.predict_config(FmmConfig(threads=1, n_particles=16384,
                                                particles_per_leaf=q, order=2))
                 for q in qs]
        best = int(np.argmin(times))
        assert 0 < best < len(qs) - 1

    def test_threads_ignored(self, model):
        t1 = model.predict_config(FmmConfig(threads=1, n_particles=8192,
                                            particles_per_leaf=64, order=6))
        t16 = model.predict_config(FmmConfig(threads=16, n_particles=8192,
                                             particles_per_leaf=64, order=6))
        assert t1 == pytest.approx(t16)


class TestFeatureInterface:
    def test_predict_from_feature_matrix(self, model):
        X = np.array([[1, 4096, 64, 4], [1, 4096, 64, 8]], dtype=float)
        times = model.predict(X, ["threads", "n_particles", "particles_per_leaf", "order"])
        assert times[1] > times[0]

    def test_config_from_features(self, model):
        cfg = model.config_from_features(
            np.array([2.0, 8192.0, 32.0, 7.0]),
            ["threads", "n_particles", "particles_per_leaf", "order"],
        )
        assert cfg == FmmConfig(threads=2, n_particles=8192, particles_per_leaf=32, order=7)

    def test_invalid_constants(self):
        with pytest.raises(ValueError):
            FmmAnalyticalModel(p2p_flops_constant=0.0)
