"""Tests for repro.stencil.config."""

import numpy as np
import pytest

from repro.stencil.config import StencilConfig, StencilConfigSpace, divisors


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(16, limit=8) == [1, 2, 4, 8]

    def test_invalid(self):
        with pytest.raises(ValueError):
            divisors(0)


class TestStencilConfig:
    def test_defaults_and_properties(self):
        cfg = StencilConfig(I=64, J=32, K=16)
        assert cfg.shape == (64, 32, 16)
        assert cfg.grid_points == 64 * 32 * 16
        assert cfg.blocks == (64, 32, 16)   # unblocked => full extents
        assert not cfg.is_blocked
        assert cfg.padded_shape() == (66, 34, 18)

    def test_blocking_normalization(self):
        cfg = StencilConfig(I=64, J=64, K=64, bi=16, bj=0, bk=128)
        assert cfg.blocks == (16, 64, 64)   # bk capped at K, bj=0 -> full
        assert cfg.is_blocked

    def test_to_dict_and_feature_values(self):
        cfg = StencilConfig(I=8, J=8, K=8, bi=2, bj=4, bk=8, unroll=2, threads=4)
        values = cfg.feature_values(["I", "bj", "threads"])
        assert values == [8.0, 4.0, 4.0]
        with pytest.raises(KeyError):
            cfg.feature_values(["nonexistent"])

    @pytest.mark.parametrize("kwargs", [
        dict(I=0, J=1, K=1), dict(I=1, J=1, K=1, bi=-1), dict(I=1, J=1, K=1, unroll=9),
        dict(I=1, J=1, K=1, threads=0), dict(I=1, J=1, K=1, stencil_points=5),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            StencilConfig(**kwargs)


class TestStencilConfigSpace:
    def test_paper_space_fig3a_shape(self):
        space = StencilConfigSpace.small_grids_with_blocking()
        configs = space.configs()
        assert len(configs) > 1000
        assert space.feature_names == ["I", "J", "K", "bi", "bj", "bk"]
        # All grids have I = 1 and J, K multiples of 16 up to 128.
        assert all(c.I == 1 for c in configs)
        assert all(c.J % 16 == 0 and 16 <= c.J <= 128 for c in configs)
        # Block sizes divide the extents.
        assert all(c.J % c.bj == 0 and c.K % c.bk == 0 for c in configs)

    def test_paper_space_fig5_shape(self):
        space = StencilConfigSpace.large_grids_no_blocking()
        configs = space.configs()
        assert len(configs) == 9 ** 3
        assert space.feature_names == ["I", "J", "K"]
        assert all(not c.is_blocked for c in configs)

    def test_paper_space_fig7_shape(self):
        space = StencilConfigSpace.threaded_plane_grids()
        configs = space.configs()
        assert len(configs) == 4 * 4 * 8
        assert all(c.K == 1 for c in configs)
        assert {c.threads for c in configs} == set(range(1, 9))

    def test_feature_matrix_shape_and_order(self):
        space = StencilConfigSpace.large_grids_no_blocking()
        X = space.to_feature_matrix()
        assert X.shape == (len(space.configs()), 3)
        first = space.configs()[0]
        np.testing.assert_array_equal(X[0], [first.I, first.J, first.K])

    def test_explicit_blockings(self):
        space = StencilConfigSpace(grid_sizes=[(8, 8, 8)], blockings=[(2, 2, 2), (4, 4, 4)])
        configs = space.configs()
        assert len(configs) == 2
        assert {c.blocks for c in configs} == {(2, 2, 2), (4, 4, 4)}

    def test_unroll_and_threads_dimensions(self):
        space = StencilConfigSpace(grid_sizes=[(8, 8, 8)], unroll_factors=[0, 2],
                                   thread_counts=[1, 4])
        assert len(space) == 4
        assert "unroll" in space.feature_names and "threads" in space.feature_names

    def test_max_block_candidates_cap(self):
        space = StencilConfigSpace(grid_sizes=[(1, 128, 128)], blockings="divisors",
                                   max_block_candidates=4)
        # at most 4 candidates per dimension -> at most 4*4*1 blockings
        assert len(space) <= 16

    def test_invalid_spaces(self):
        with pytest.raises(ValueError):
            StencilConfigSpace(grid_sizes=[])
        with pytest.raises(ValueError):
            StencilConfigSpace(grid_sizes=[(4, 4, 4)], blockings="powers-of-two").configs()
