"""Tests for repro.stencil.blocking."""

import numpy as np
import pytest

from repro.stencil.blocking import block_counts, blocked_sweep, iterate_blocks
from repro.stencil.kernels import stencil7_sweep


class TestBlockCounts:
    def test_exact_division(self):
        assert block_counts((16, 32, 8), (4, 8, 8)) == (4, 4, 1)

    def test_ceiling_for_partial_tiles(self):
        assert block_counts((10, 10, 10), (3, 4, 7)) == (4, 3, 2)

    def test_block_larger_than_extent(self):
        assert block_counts((4, 4, 4), (100, 100, 100)) == (1, 1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_counts((0, 4, 4), (1, 1, 1))
        with pytest.raises(ValueError):
            block_counts((4, 4, 4), (0, 1, 1))


class TestIterateBlocks:
    def test_blocks_cover_domain_exactly_once(self):
        shape = (7, 9, 5)
        cover = np.zeros(shape, dtype=int)
        for si, sj, sk in iterate_blocks(shape, (3, 4, 2)):
            cover[si, sj, sk] += 1
        assert np.all(cover == 1)

    def test_block_sizes_bounded(self):
        for si, sj, sk in iterate_blocks((10, 10, 10), (4, 5, 6)):
            assert si.stop - si.start <= 4
            assert sj.stop - sj.start <= 5
            assert sk.stop - sk.start <= 6


class TestBlockedSweep:
    @pytest.mark.parametrize("blocks", [(1, 1, 1), (2, 3, 4), (5, 5, 5), (100, 1, 7)])
    def test_bit_identical_to_unblocked(self, blocks):
        rng = np.random.default_rng(2)
        src = rng.random((9, 10, 11))
        dst_blocked = np.zeros_like(src)
        dst_plain = np.zeros_like(src)
        n_blocked = blocked_sweep(src, dst_blocked, 0.4, 0.1, blocks)
        n_plain = stencil7_sweep(src, dst_plain, 0.4, 0.1)
        assert n_blocked == n_plain
        np.testing.assert_array_equal(dst_blocked[1:-1, 1:-1, 1:-1],
                                      dst_plain[1:-1, 1:-1, 1:-1])

    def test_ghosts_untouched(self):
        src = np.random.default_rng(0).random((6, 6, 6))
        dst = np.full_like(src, -5.0)
        blocked_sweep(src, dst, 0.4, 0.1, (2, 2, 2))
        assert np.all(dst[0, :, :] == -5.0)

    def test_invalid_block_sizes(self):
        src = np.zeros((5, 5, 5))
        dst = np.zeros_like(src)
        with pytest.raises(ValueError):
            blocked_sweep(src, dst, 0.4, 0.1, (0, 1, 1))
