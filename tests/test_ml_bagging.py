"""Tests for repro.ml.bagging."""

import numpy as np
import pytest

from repro.ml.bagging import BaggingRegressor
from repro.ml.linear import Ridge
from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    X = rng.uniform(-2, 2, size=(250, 3))
    y = X[:, 0] * X[:, 1] + np.abs(X[:, 2]) + 0.05 * rng.normal(size=250)
    return X[:180], y[:180], X[180:], y[180:]


class TestBaggingRegressor:
    def test_default_base_is_tree(self, data):
        Xtr, ytr, Xte, yte = data
        model = BaggingRegressor(n_estimators=15, random_state=0).fit(Xtr, ytr)
        assert all(isinstance(est, DecisionTreeRegressor) for est in model.estimators_)
        assert r2_score(yte, model.predict(Xte)) > 0.5

    def test_custom_base_estimator(self, data):
        Xtr, ytr, Xte, _ = data
        model = BaggingRegressor(estimator=Ridge(alpha=0.1), n_estimators=5,
                                 random_state=0).fit(Xtr, ytr)
        assert all(isinstance(est, Ridge) for est in model.estimators_)
        assert model.predict(Xte).shape == (len(Xte),)

    def test_bagging_reduces_variance_vs_single_tree(self, data):
        Xtr, ytr, Xte, yte = data
        tree_scores = []
        bag_scores = []
        for seed in range(3):
            idx = np.random.default_rng(seed).integers(0, len(Xtr), len(Xtr))
            tree = DecisionTreeRegressor(random_state=seed).fit(Xtr[idx], ytr[idx])
            bag = BaggingRegressor(n_estimators=15, random_state=seed).fit(Xtr[idx], ytr[idx])
            tree_scores.append(r2_score(yte, tree.predict(Xte)))
            bag_scores.append(r2_score(yte, bag.predict(Xte)))
        assert np.mean(bag_scores) >= np.mean(tree_scores)

    def test_max_samples_and_features(self, data):
        Xtr, ytr, Xte, _ = data
        model = BaggingRegressor(n_estimators=4, max_samples=0.5, max_features=2,
                                 random_state=0).fit(Xtr, ytr)
        assert all(len(feats) == 2 for feats in model.estimators_features_)
        assert model.predict(Xte).shape == (len(Xte),)

    def test_no_bootstrap_mode(self, data):
        Xtr, ytr, Xte, _ = data
        model = BaggingRegressor(n_estimators=4, bootstrap=False, max_samples=0.6,
                                 random_state=0).fit(Xtr, ytr)
        assert model.predict(Xte).shape == (len(Xte),)

    def test_predict_std(self, data):
        Xtr, ytr, Xte, _ = data
        model = BaggingRegressor(n_estimators=10, random_state=0).fit(Xtr, ytr)
        assert np.all(model.predict_std(Xte) >= 0)

    def test_determinism(self, data):
        Xtr, ytr, Xte, _ = data
        p1 = BaggingRegressor(n_estimators=6, random_state=2).fit(Xtr, ytr).predict(Xte)
        p2 = BaggingRegressor(n_estimators=6, random_state=2).fit(Xtr, ytr).predict(Xte)
        np.testing.assert_array_equal(p1, p2)

    @pytest.mark.parametrize("kwargs", [
        dict(n_estimators=0),
        dict(max_samples=0.0),
        dict(max_samples=2.5),
        dict(max_features=0),
        dict(max_features=99),
    ])
    def test_invalid_parameters(self, data, kwargs):
        Xtr, ytr, _, _ = data
        with pytest.raises(ValueError):
            BaggingRegressor(**kwargs).fit(Xtr, ytr)

    def test_feature_count_checked_at_predict(self, data):
        Xtr, ytr, _, _ = data
        model = BaggingRegressor(n_estimators=3, random_state=0).fit(Xtr, ytr)
        with pytest.raises(ValueError):
            model.predict(Xtr[:, :1])
