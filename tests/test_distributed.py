"""Tests for the distributed worker-fleet executor (`repro.distributed`).

The guarantees under test:

* the ``remote`` executor produces ``ExperimentResult`` rows **bit-identical**
  to the serial executor — for a clean fleet, for a fleet whose worker is
  SIGKILLed mid-plan (leased cells are requeued), and for a worker whose
  heartbeat goes silent;
* the HELLO handshake rejects protocol-version and store-format-version
  mismatches instead of exchanging incompatible artifacts;
* cold-store workers bootstrap the dataset and warmed analytical caches
  without ever re-simulating (store hit counters) — directly from the
  store the coordinator advertises when it is shareable, through
  coordinator relay frames otherwise (and as fallback when the
  advertised store is unreachable);
* a cell that exhausts its requeue budget fails the plan with a hard
  error rather than hanging the coordinator.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

import pytest

from repro.datasets.store import _FORMAT_VERSION, DatasetStore, _simulator_versions
from repro.distributed import protocol
from repro.distributed.coordinator import Coordinator
from repro.distributed.protocol import PROTOCOL_VERSION, parse_address
from repro.distributed.worker import FleetWorker
from repro.experiments import ExperimentSettings, run_experiment
from repro.experiments.plan import expand_cells, experiment_plan
from repro.experiments.scheduler import EXECUTORS, run_plan

TINY = ExperimentSettings(n_estimators=4, n_repeats=2, max_configs=120, random_state=0)


def _rows(result):
    return (result.rows(), result.extra)


def _raw_handshake(address, *, protocol_version=PROTOCOL_VERSION,
                   store_format_version=_FORMAT_VERSION,
                   simulator_versions=None, worker_id="raw-client"):
    """Connect a bare socket and perform (a possibly broken) HELLO."""
    sock = socket.create_connection(address, timeout=10.0)
    protocol.send_message(sock, protocol.Hello(
        protocol_version=protocol_version,
        store_format_version=store_format_version,
        worker_id=worker_id, pid=os.getpid(),
        simulator_versions=(simulator_versions if simulator_versions is not None
                            else _simulator_versions())))
    return sock, protocol.recv_message(sock)


def _await_plan(sock, worker_id="raw-client", timeout=30.0):
    """Poll GetPlan on a raw client until a PlanAssignment arrives."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        protocol.send_message(sock, protocol.GetPlan(worker_id))
        reply = protocol.recv_message(sock)
        if isinstance(reply, protocol.PlanAssignment):
            return reply
        time.sleep(0.05)
    raise AssertionError("no plan became active in time")


def _run_plan_async(plan, coordinator, **kwargs):
    """run_plan(executor='remote') in a thread; returns (thread, outcome box)."""
    box: dict = {}

    def _target():
        try:
            box["result"] = run_plan(plan, executor="remote", fleet=coordinator,
                                     **kwargs)
        except BaseException as exc:  # noqa: BLE001 - surfaced via the box
            box["error"] = exc

    thread = threading.Thread(target=_target, daemon=True)
    thread.start()
    return thread, box


class TestProtocol:
    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        try:
            messages = [
                protocol.Hello(PROTOCOL_VERSION, _FORMAT_VERSION, "w1", 123),
                protocol.Heartbeat("w1"),
                protocol.DatasetBlob("abc", os.urandom(1 << 17)),
                protocol.Results("abc", "w1", ()),
            ]
            lock = threading.Lock()
            for message in messages:
                protocol.send_message(left, message, lock)
            for message in messages:
                assert protocol.recv_message(right) == message
        finally:
            left.close()
            right.close()

    def test_eof_raises_connection_closed(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(protocol.ConnectionClosed):
                protocol.recv_message(right)
        finally:
            right.close()

    def test_parse_address(self):
        assert parse_address("10.0.0.1:9001") == ("10.0.0.1", 9001)
        with pytest.raises(ValueError):
            parse_address("no-port")
        with pytest.raises(ValueError):
            parse_address(":9001")


class TestHandshake:
    @pytest.fixture()
    def coordinator(self):
        with Coordinator() as coordinator:
            yield coordinator

    def test_protocol_version_mismatch_rejected(self, coordinator):
        sock, reply = _raw_handshake(coordinator.address,
                                     protocol_version=PROTOCOL_VERSION + 1)
        sock.close()
        assert isinstance(reply, protocol.Reject)
        assert "protocol version" in reply.reason
        assert coordinator.stats["rejected_handshakes"] == 1

    def test_store_format_version_mismatch_rejected(self, coordinator):
        sock, reply = _raw_handshake(coordinator.address,
                                     store_format_version=_FORMAT_VERSION + 1)
        sock.close()
        assert isinstance(reply, protocol.Reject)
        assert "store fingerprint format" in reply.reason

    def test_simulator_version_mismatch_rejected(self, coordinator):
        """Fingerprints fold in the simulator versions, so a skewed worker
        must not be allowed to exchange store artifacts."""
        sock, reply = _raw_handshake(coordinator.address,
                                     simulator_versions="fmm999-stencil999")
        sock.close()
        assert isinstance(reply, protocol.Reject)
        assert "simulator version" in reply.reason

    def test_matching_versions_welcomed(self, coordinator):
        sock, reply = _raw_handshake(coordinator.address)
        assert isinstance(reply, protocol.Welcome)
        assert reply.coordinator_id == coordinator.coordinator_id
        sock.close()

    def test_request_before_handshake_rejected(self, coordinator):
        sock = socket.create_connection(coordinator.address, timeout=10.0)
        protocol.send_message(sock, protocol.GetPlan("impatient"))
        reply = protocol.recv_message(sock)
        sock.close()
        assert isinstance(reply, protocol.Reject)
        assert "handshake" in reply.reason

    def test_rejected_worker_exits_with_error(self, coordinator, monkeypatch):
        monkeypatch.setattr("repro.distributed.worker.PROTOCOL_VERSION",
                            PROTOCOL_VERSION + 1)
        worker = FleetWorker(coordinator.address, connect_timeout=5.0)
        assert worker.run() == 2


class TestRemoteExecutor:
    def test_remote_is_a_registered_executor(self):
        assert "remote" in EXECUTORS

    def test_in_process_fleet_bit_identical(self):
        """Three workers over real sockets == serial, and the fleet survives
        a second plan on the same connections (per-plan memo reuse)."""
        serial6 = run_experiment("figure6", TINY)
        serial8 = run_experiment("figure8", TINY)
        with Coordinator() as coordinator:
            workers = [FleetWorker(coordinator.address) for _ in range(3)]
            threads = [threading.Thread(target=w.run, daemon=True) for w in workers]
            for thread in threads:
                thread.start()
            remote6 = run_experiment("figure6", TINY, executor="remote",
                                     fleet=coordinator)
            remote8 = run_experiment("figure8", TINY, executor="remote",
                                     fleet=coordinator)
        for thread in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        assert _rows(remote6) == _rows(serial6)
        assert _rows(remote8) == _rows(serial8)
        # Work was actually distributed, not funneled through one worker.
        assert sum(w.cells_evaluated for w in workers) == 12 + 12
        assert sum(w.plans_served > 0 for w in workers) >= 2

    def test_local_subprocess_fleet_bit_identical(self, tmp_path):
        """The acceptance criterion: `--executor remote --jobs 2` == serial."""
        serial = run_experiment("figure5", TINY, store=str(tmp_path))
        remote = run_experiment("figure5", TINY, executor="remote", jobs=2,
                                store=str(tmp_path))
        assert _rows(remote) == _rows(serial)

    def test_auto_leases_bit_identical(self):
        """``batch_size="auto"`` (cost-budget leases, expensive-first
        queue) changes only the lease shapes: rows match serial and every
        cell is evaluated exactly as often as the fixed-size path."""
        plan = experiment_plan("figure6", TINY)
        serial = run_plan(plan)
        with Coordinator(batch_size="auto") as coordinator:
            workers = [FleetWorker(coordinator.address) for _ in range(2)]
            threads = [threading.Thread(target=w.run, daemon=True) for w in workers]
            for thread in threads:
                thread.start()
            remote = run_plan(plan, executor="remote", fleet=coordinator)
        for thread in threads:
            thread.join(timeout=10.0)
        assert _rows(remote) == _rows(serial)
        assert sum(w.cells_evaluated for w in workers) == len(expand_cells(plan))

    def test_batch_size_validation(self):
        for bad in (0, -1, "bogus", True, 2.5):
            with pytest.raises(ValueError, match="batch_size"):
                Coordinator(batch_size=bad)

    def test_worker_sigkill_mid_plan_requeues(self, tmp_path):
        """Kill a worker process mid-plan: its leased cells are requeued and
        the merged result is still bit-identical to serial."""
        store = DatasetStore(tmp_path)
        plan = experiment_plan("figure6", TINY)
        serial = run_plan(plan, store=store)
        with Coordinator(batch_size=2, heartbeat_timeout=30.0) as coordinator:
            procs = coordinator.spawn_local_workers(2, store_dir=tmp_path,
                                                    cell_delay=0.4)
            pids = {proc.pid for proc in procs}
            killed: list[int] = []

            def _assassin():
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    for worker in coordinator.worker_snapshot():
                        if worker["pid"] in pids and worker["lease"] > 0:
                            time.sleep(0.15)  # now provably mid-batch
                            os.kill(worker["pid"], signal.SIGKILL)
                            killed.append(worker["pid"])
                            return
                    time.sleep(0.02)

            assassin = threading.Thread(target=_assassin, daemon=True)
            assassin.start()
            remote = run_plan(plan, executor="remote", fleet=coordinator,
                              store=store)
            assassin.join(timeout=5.0)
        assert killed, "no worker held a lease to kill"
        assert coordinator.stats["workers_failed"] >= 1
        assert coordinator.stats["requeued_cells"] >= 1
        assert _rows(remote) == _rows(serial)

    def test_heartbeat_timeout_requeues_silent_worker(self):
        """A worker that stops heartbeating (without dying) loses its lease."""
        plan = experiment_plan("figure6", TINY)
        serial = run_plan(plan)
        coordinator = Coordinator(batch_size=4, heartbeat_timeout=0.6)
        try:
            thread, box = _run_plan_async(plan, coordinator)
            sock, welcome = _raw_handshake(coordinator.address, worker_id="silent")
            assert isinstance(welcome, protocol.Welcome)
            assignment = _await_plan(sock, worker_id="silent")
            protocol.send_message(sock, protocol.GetBatch(assignment.plan_id, "silent"))
            batch = protocol.recv_message(sock)
            assert isinstance(batch, protocol.Batch) and batch.cells
            # Go silent (socket stays open), then let an honest worker finish.
            honest = FleetWorker(coordinator.address)
            honest_thread = threading.Thread(target=honest.run, daemon=True)
            honest_thread.start()
            thread.join(timeout=120.0)
            assert not thread.is_alive()
            sock.close()
        finally:
            coordinator.close()
        assert "error" not in box, box.get("error")
        assert coordinator.stats["requeued_cells"] >= len(batch.cells)
        assert coordinator.stats["workers_failed"] >= 1
        assert honest.cells_evaluated == len(expand_cells(plan))
        assert _rows(box["result"]) == _rows(serial)

    def test_retry_exhaustion_is_a_hard_error(self):
        """A cell whose every lease dies exhausts max_retries and fails the plan."""
        plan = experiment_plan("figure6", TINY)
        coordinator = Coordinator(batch_size=2, max_retries=0)
        try:
            thread, box = _run_plan_async(plan, coordinator)
            sock, welcome = _raw_handshake(coordinator.address, worker_id="dying")
            assert isinstance(welcome, protocol.Welcome)
            assignment = _await_plan(sock, worker_id="dying")
            protocol.send_message(sock, protocol.GetBatch(assignment.plan_id, "dying"))
            assert isinstance(protocol.recv_message(sock), protocol.Batch)
            sock.close()  # die with the lease held
            thread.join(timeout=120.0)
            assert not thread.is_alive()
        finally:
            coordinator.close()
        assert isinstance(box.get("error"), RuntimeError)
        assert "max_retries" in str(box["error"])

    def test_all_local_workers_dead_fails_fast(self, tmp_path):
        """A purely-local fleet with no survivors aborts instead of hanging."""
        plan = experiment_plan("figure6", TINY)
        with Coordinator() as coordinator:
            procs = coordinator.spawn_local_workers(1, store_dir=tmp_path,
                                                    cell_delay=5.0)
            thread, box = _run_plan_async(plan, coordinator)
            deadline = time.monotonic() + 60.0
            while not coordinator.worker_snapshot() and time.monotonic() < deadline:
                time.sleep(0.02)
            for proc in procs:
                proc.kill()
                proc.wait()
            thread.join(timeout=120.0)
            assert not thread.is_alive()
        assert isinstance(box.get("error"), RuntimeError)
        assert "exited" in str(box["error"])


class TestStoreBootstrap:
    def test_cold_worker_bootstraps_without_simulating(self, tmp_path):
        """Acceptance: a cold --store-dir worker downloads the dataset and
        warmed caches — directly from the advertised parent store (zero
        relay frames through the coordinator); its store never generates."""
        parent = DatasetStore(tmp_path / "parent")
        plan = experiment_plan("figure6", TINY)
        serial = run_plan(plan, store=parent)

        worker_store = DatasetStore(tmp_path / "worker")
        with Coordinator() as coordinator:
            worker = FleetWorker(coordinator.address, store=worker_store)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            remote = run_plan(plan, executor="remote", fleet=coordinator,
                              store=parent)
        thread.join(timeout=10.0)
        assert _rows(remote) == _rows(serial)
        # The worker's store was populated by download, not simulation:
        # `misses` counts generations, `cache_misses` counts warm-ups.
        assert worker_store.misses == 0 and worker_store.cache_misses == 0
        assert worker_store.hits >= 1 and worker_store.cache_hits >= 1
        # The parent store is a shareable file:// locator, so the worker
        # bootstrapped directly from it: zero relay frames.
        assert (worker.direct_fetches, worker.relay_fetches) == (2, 0)
        assert coordinator.stats["datasets_served"] == 0
        assert coordinator.stats["caches_served"] == 0
        assert worker_store.dataset_path(plan.dataset).exists()
        assert worker_store.cache_path("stencil", plan.dataset).exists()

        # A fresh worker on the now-warm store needs no bootstrap traffic.
        warm_store = DatasetStore(tmp_path / "worker")
        with Coordinator() as coordinator2:
            worker2 = FleetWorker(coordinator2.address, store=warm_store)
            thread2 = threading.Thread(target=worker2.run, daemon=True)
            thread2.start()
            remote2 = run_plan(plan, executor="remote", fleet=coordinator2,
                               store=parent)
        thread2.join(timeout=10.0)
        assert _rows(remote2) == _rows(serial)
        assert coordinator2.stats["datasets_served"] == 0
        assert coordinator2.stats["caches_served"] == 0
        assert (worker2.direct_fetches, worker2.relay_fetches) == (0, 0)
        assert warm_store.misses == 0 and warm_store.cache_misses == 0

    def test_unreachable_advertised_store_falls_back_to_relay(self, tmp_path,
                                                              monkeypatch):
        """A worker that cannot reach the advertised store still bootstraps
        through the coordinator's FetchDataset/FetchCache relay frames."""
        parent = DatasetStore(tmp_path)
        plan = experiment_plan("figure6", TINY)
        serial = run_plan(plan, store=parent)
        # Advertise a locator nothing listens on (port 1 refuses instantly).
        monkeypatch.setattr(
            type(parent.backend), "locator",
            property(lambda self: "http://127.0.0.1:1/"))
        with Coordinator() as coordinator:
            worker = FleetWorker(coordinator.address)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            remote = run_plan(plan, executor="remote", fleet=coordinator,
                              store=parent)
        thread.join(timeout=10.0)
        assert _rows(remote) == _rows(serial)
        assert (worker.direct_fetches, worker.relay_fetches) == (0, 2)
        assert coordinator.stats["datasets_served"] == 1
        assert coordinator.stats["caches_served"] == 1

    def test_dataset_override_bypasses_warm_worker_store(self, tmp_path):
        """An explicit dataset override has no registered fingerprint: a
        worker whose store already holds the *spec's* dataset must fetch
        the override blob instead of serving the stale store entry."""
        from repro.datasets import DatasetSpec

        plan = experiment_plan("figure6", TINY)
        parent = DatasetStore(tmp_path)
        run_plan(plan, store=parent)  # warm the store with the spec dataset
        override = DatasetSpec("stencil-blocked", max_configs=100,
                               random_state=0).build()
        assert override.n_samples != parent.get(plan.dataset).n_samples
        serial = run_plan(plan, dataset=override)
        with Coordinator() as coordinator:
            worker = FleetWorker(coordinator.address, store=DatasetStore(tmp_path))
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            remote = run_plan(plan, executor="remote", fleet=coordinator,
                              dataset=override)
        thread.join(timeout=10.0)
        assert coordinator.stats["datasets_served"] == 1  # fetched, not store-read
        assert _rows(remote) == _rows(serial)
        # The override never leaks into the worker's persistent store.
        fresh = DatasetStore(tmp_path)
        assert fresh.get(plan.dataset).n_samples != override.n_samples

    def test_storeless_worker_runs_from_memory(self):
        """No --store-dir at all: blobs are decoded in memory, nothing simulated."""
        plan = experiment_plan("figure5", TINY)
        serial = run_plan(plan)
        with Coordinator() as coordinator:
            worker = FleetWorker(coordinator.address)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            remote = run_plan(plan, executor="remote", fleet=coordinator)
        thread.join(timeout=10.0)
        assert worker.store is None
        assert coordinator.stats["datasets_served"] == 1
        assert _rows(remote) == _rows(serial)

    def test_dataset_bytes_round_trip(self, tmp_path):
        import numpy as np

        store = DatasetStore(tmp_path)
        spec = experiment_plan("figure6", TINY).dataset
        dataset = store.get(spec)
        data = store.dataset_bytes(spec)
        assert data == DatasetStore.encode_dataset(dataset)
        decoded = DatasetStore.decode_dataset_bytes(data)
        np.testing.assert_array_equal(decoded.X, dataset.X)
        np.testing.assert_array_equal(decoded.y, dataset.y)
        assert decoded.feature_names == dataset.feature_names
        assert decoded.configs == dataset.configs

        other = DatasetStore(tmp_path / "other")
        other.put_dataset_bytes(spec, data)
        loaded = other.get(spec)
        assert (other.misses, other.hits) == (0, 1)
        np.testing.assert_array_equal(loaded.X, dataset.X)


class TestObjectStoreBootstrap:
    """Fleet bootstrap straight from the bundled S3-style object store."""

    @pytest.fixture()
    def object_store(self):
        from repro.datasets.backends import MemoryBackend
        from repro.datasets.object_server import ObjectStoreServer

        with ObjectStoreServer(MemoryBackend()) as server:
            yield server

    def test_storeless_worker_bootstraps_from_object_store(self, object_store):
        """Acceptance: a store-dir-less worker pointed at an http:// store
        locator pulls dataset + warmed caches straight off the object
        server — zero FetchDataset/FetchCache frames through the
        coordinator — and rows stay bit-identical to serial."""
        plan = experiment_plan("figure6", TINY)
        serial = run_plan(plan)
        shared = DatasetStore(object_store.url)
        warm = run_plan(plan, store=shared)  # seeds the object store
        assert _rows(warm) == _rows(serial)
        puts_before = object_store.stats["puts"]

        coordinator_store = DatasetStore(object_store.url)
        with Coordinator() as coordinator:
            worker = FleetWorker(coordinator.address)  # no store at all
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            remote = run_plan(plan, executor="remote", fleet=coordinator,
                              store=coordinator_store)
        thread.join(timeout=10.0)
        assert _rows(remote) == _rows(serial)
        # Dataset + one warmed cache, both served over HTTP, not the socket.
        assert (worker.direct_fetches, worker.relay_fetches) == (2, 0)
        assert coordinator.stats["datasets_served"] == 0
        assert coordinator.stats["caches_served"] == 0
        assert object_store.stats["gets"] >= 2
        # Bootstrap is read-only: the store-less worker uploaded nothing.
        assert object_store.stats["puts"] == puts_before

    def test_worker_with_object_store_url(self, object_store):
        """A worker whose *own* store is the object store (--store-url
        http://...) loads artifacts directly and needs no bootstrap at all."""
        plan = experiment_plan("figure6", TINY)
        shared = DatasetStore(object_store.url)
        serial = run_plan(plan, store=shared)

        worker_store = DatasetStore(object_store.url)
        with Coordinator() as coordinator:
            worker = FleetWorker(coordinator.address, store=worker_store)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            remote = run_plan(plan, executor="remote", fleet=coordinator,
                              store=shared)
        thread.join(timeout=10.0)
        assert _rows(remote) == _rows(serial)
        assert (worker.direct_fetches, worker.relay_fetches) == (0, 0)
        assert worker_store.misses == 0 and worker_store.cache_misses == 0
        assert worker_store.hits >= 1 and worker_store.cache_hits >= 1
        assert coordinator.stats["datasets_served"] == 0
        assert coordinator.stats["caches_served"] == 0

    def test_prune_works_on_object_store(self, object_store):
        """`--store-prune` semantics are backend-independent."""
        live = experiment_plan("figure6", TINY).dataset
        stale = experiment_plan(
            "figure6", ExperimentSettings(max_configs=77)).dataset
        store = DatasetStore(object_store.url)
        store.get(live)
        store.get(stale)
        removed = store.prune(keep_fingerprints={live.fingerprint})
        assert [p.name for p in removed] == [store.dataset_path(stale).name]
        fresh = DatasetStore(object_store.url)
        fresh.get(live)
        assert (fresh.misses, fresh.hits) == (0, 1)


class TestFleetWorkerCli:
    def test_unreachable_coordinator_exits_nonzero(self):
        from repro.distributed.worker import main

        # Port 1 on loopback refuses immediately; the retry window is tiny.
        assert main(["--connect", "127.0.0.1:1", "--connect-timeout", "0.2"]) == 1

    def test_fleet_worker_subcommand_delegates(self):
        from repro.experiments.__main__ import main

        assert main(["fleet-worker", "--connect", "127.0.0.1:1",
                     "--connect-timeout", "0.2"]) == 1

    def test_cli_remote_run_with_prune(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        args = ["figure6", "--quick", "--executor", "remote", "--jobs", "2",
                "--store-dir", str(tmp_path), "--store-prune"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "figure6" in out and "hybrid" in out
        assert "store prune" in out
        assert (tmp_path / "datasets").exists()

    def test_cli_flag_validation(self, tmp_path):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure6", "--quick", "--executor", "process", "--workers", "2"])
        with pytest.raises(SystemExit):
            main(["figure6", "--quick", "--store-prune"])


class TestFaultTolerance:
    """Degradation paths: every fallback is taken loudly and recovers."""

    def test_direct_fetch_corruption_degrades_to_relay(self, tmp_path, caplog):
        """A corrupt blob in the shared store is rejected by the worker's
        checksum verification, logged with its cause, counted, and served
        through the coordinator relay instead — rows stay correct."""
        import logging

        from repro.testing import flip_bit

        parent = DatasetStore(tmp_path)
        plan = experiment_plan("figure6", TINY)
        serial = run_plan(plan, store=parent)
        with Coordinator() as coordinator:
            thread, box = _run_plan_async(plan, coordinator, store=parent)
            deadline = time.monotonic() + 60.0
            while (coordinator.load()["outstanding"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            # The driver has resolved the plan (and snapshotted clean relay
            # blobs); now rot the shared dataset blob on disk.  The sidecar
            # still holds the original digest, so reads must be rejected.
            blob_path = parent.dataset_path(plan.dataset)
            blob_path.write_bytes(flip_bit(blob_path.read_bytes()))
            worker = FleetWorker(coordinator.address)
            worker_thread = threading.Thread(target=worker.run, daemon=True)
            with caplog.at_level(logging.WARNING,
                                 logger="repro.distributed.worker"):
                worker_thread.start()
                thread.join(timeout=120.0)
                assert not thread.is_alive()
        worker_thread.join(timeout=10.0)
        assert "error" not in box, box.get("error")
        assert _rows(box["result"]) == _rows(serial)
        # The degradation was counted and logged exactly once, with cause.
        assert worker.direct_fetch_errors == 1
        assert worker.relay_fetches == 1   # dataset via relay
        assert worker.direct_fetches == 1  # cache still came directly
        assert "degrading to coordinator relay" in caplog.text
        assert "IntegrityError" in caplog.text

    def test_relay_blob_digest_mismatch_is_retried(self):
        """A relay blob that fails digest verification is refetched; the
        second copy passes and the plan completes bit-identically."""
        from repro.testing import flip_bit

        plan = experiment_plan("figure6", TINY)
        serial = run_plan(plan)
        with Coordinator() as coordinator:
            original_reply = coordinator._reply
            tampered = {"done": False}

            def tamper(info, message):
                reply = original_reply(info, message)
                if (isinstance(message, protocol.FetchDataset)
                        and isinstance(reply, protocol.DatasetBlob)
                        and not tampered["done"]):
                    tampered["done"] = True
                    return protocol.DatasetBlob(
                        reply.plan_id, flip_bit(reply.data),
                        sha256=reply.sha256)
                return reply

            coordinator._reply = tamper
            worker = FleetWorker(coordinator.address)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            remote = run_plan(plan, executor="remote", fleet=coordinator)
        thread.join(timeout=10.0)
        assert tampered["done"]
        assert worker.blob_integrity_errors == 1
        assert _rows(remote) == _rows(serial)

    def test_worker_reconnects_after_connection_cut(self):
        """A severed coordinator connection is survived: the worker
        re-handshakes (same id, memo intact) and serves the next plan."""
        plan = experiment_plan("figure6", TINY)
        serial = run_plan(plan)
        with Coordinator() as coordinator:
            worker = FleetWorker(coordinator.address, reconnect_attempts=5,
                                 reconnect_timeout=5.0)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            remote1 = run_plan(plan, executor="remote", fleet=coordinator)
            with coordinator._lock:
                infos = list(coordinator._workers.values())
            assert infos
            for info in infos:
                coordinator._sever(info)
            deadline = time.monotonic() + 20.0
            while worker.reconnects == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert worker.reconnects >= 1
            remote2 = run_plan(plan, executor="remote", fleet=coordinator)
        thread.join(timeout=10.0)
        assert _rows(remote1) == _rows(serial)
        assert _rows(remote2) == _rows(serial)


class TestSpeculation:
    def test_straggler_lease_is_speculatively_duplicated(self):
        """A worker that holds a lease forever does not stall the plan: once
        the queue drains, its overdue cells are re-leased to a healthy
        worker and dedupe-by-key keeps the duplication harmless."""
        plan = experiment_plan("figure6", TINY)
        serial = run_plan(plan)
        total = len(expand_cells(plan))
        coordinator = Coordinator(batch_size=1, heartbeat_timeout=30.0,
                                  speculation_min_delay=0.2,
                                  speculation_factor=1.5)
        try:
            thread, box = _run_plan_async(plan, coordinator)
            sock, welcome = _raw_handshake(coordinator.address,
                                           worker_id="straggler")
            assert isinstance(welcome, protocol.Welcome)
            assignment = _await_plan(sock, worker_id="straggler")
            protocol.send_message(
                sock, protocol.GetBatch(assignment.plan_id, "straggler"))
            batch = protocol.recv_message(sock)
            assert isinstance(batch, protocol.Batch) and batch.cells
            # Hold the lease forever (the socket stays open, no results
            # ever come) while an honest worker drains the queue.
            honest = FleetWorker(coordinator.address)
            honest_thread = threading.Thread(target=honest.run, daemon=True)
            honest_thread.start()
            thread.join(timeout=120.0)
            assert not thread.is_alive()
            sock.close()
        finally:
            coordinator.close()
        assert "error" not in box, box.get("error")
        assert coordinator.stats["speculative_releases"] >= 1
        # The honest worker really raced the straggler's cells — it
        # evaluated the whole plan, including the held lease.
        assert honest.cells_evaluated == total
        assert _rows(box["result"]) == _rows(serial)


class TestElasticFleet:
    def test_desired_workers_sizing_rule(self):
        from repro.distributed.autoscale import desired_workers

        def load(n):
            return {"outstanding": n}

        assert desired_workers(load(0), min_workers=0, max_workers=4) == 0
        assert desired_workers(load(1), min_workers=0, max_workers=4) == 1
        assert desired_workers(load(9), min_workers=0, max_workers=4,
                               cells_per_worker=4) == 3
        assert desired_workers(load(10**6), min_workers=0, max_workers=4) == 4
        assert desired_workers(load(0), min_workers=2, max_workers=4) == 2
        with pytest.raises(ValueError, match="min_workers"):
            desired_workers(load(0), min_workers=3, max_workers=2)
        with pytest.raises(ValueError, match="cells_per_worker"):
            desired_workers(load(0), min_workers=0, max_workers=1,
                            cells_per_worker=0)

    def test_autoscaler_spawns_for_queue_and_retires_idle(self, tmp_path):
        """Ticks are driven by hand for determinism: a queued plan scales
        the fleet up to target, a drained queue retires it to zero — via
        polite Goodbyes, never an abandoned lease."""
        from repro.distributed.autoscale import LocalAutoscaler

        plan = experiment_plan("figure6", TINY)
        serial = run_plan(plan)
        total = len(expand_cells(plan))
        with Coordinator() as coordinator:
            scaler = LocalAutoscaler(coordinator, min_workers=0, max_workers=2,
                                     cells_per_worker=max(1, total // 2),
                                     idle_ticks=2, store_dir=tmp_path)
            assert coordinator.elastic  # empty fleet is a transient now
            thread, box = _run_plan_async(plan, coordinator)
            deadline = time.monotonic() + 60.0
            while (coordinator.load()["outstanding"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            scaler.tick()
            assert scaler.stats["spawned"] == 2
            thread.join(timeout=120.0)
            assert not thread.is_alive()
            assert "error" not in box, box.get("error")
            # The queue has drained: idle ticks retire the whole fleet.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                scaler.tick()
                if (not coordinator.worker_snapshot()
                        and coordinator.stats["workers_retired"] >= 2):
                    break
                time.sleep(0.1)
            assert scaler.stats["retired"] >= 2
            assert coordinator.stats["workers_retired"] >= 2
            assert not coordinator.worker_snapshot()
        assert _rows(box["result"]) == _rows(serial)


class TestFleetKnobCli:
    def test_knobs_require_remote_executor(self):
        from repro.experiments.__main__ import main

        for flag, value in [("--heartbeat-timeout", "5"),
                            ("--batch-size", "2"), ("--max-retries", "1")]:
            with pytest.raises(SystemExit):
                main(["figure6", "--quick", flag, value])

    def test_knob_value_validation(self):
        from repro.experiments.__main__ import main

        base = ["figure6", "--quick", "--executor", "remote", "--jobs", "1"]
        for flag, bad in [("--heartbeat-timeout", "0"),
                          ("--batch-size", "0"), ("--max-retries", "-1")]:
            with pytest.raises(SystemExit):
                main(base + [flag, bad])

    def test_knobs_reach_the_coordinator(self, monkeypatch):
        from repro.experiments.__main__ import main

        captured = {}

        class _Probe:
            def __init__(self, **kwargs):
                captured.update(kwargs)
                raise RuntimeError("probe stop")

        monkeypatch.setattr("repro.distributed.coordinator.Coordinator", _Probe)
        with pytest.raises(RuntimeError, match="probe stop"):
            main(["figure6", "--quick", "--executor", "remote", "--jobs", "2",
                  "--heartbeat-timeout", "2.5", "--batch-size", "3",
                  "--max-retries", "7"])
        assert captured["heartbeat_timeout"] == 2.5
        assert captured["batch_size"] == 3
        assert captured["max_retries"] == 7

    def test_batch_cells_reaches_the_coordinator(self, monkeypatch):
        """``--batch-cells`` is the fleet's lease size for the remote
        executor: ``auto`` and integers both land in ``batch_size``."""
        from repro.experiments.__main__ import main

        captured = {}

        class _Probe:
            def __init__(self, **kwargs):
                captured.update(kwargs)
                raise RuntimeError("probe stop")

        monkeypatch.setattr("repro.distributed.coordinator.Coordinator", _Probe)
        with pytest.raises(RuntimeError, match="probe stop"):
            main(["figure6", "--quick", "--executor", "remote", "--jobs", "2",
                  "--batch-cells", "auto"])
        assert captured["batch_size"] == "auto"
        captured.clear()
        with pytest.raises(RuntimeError, match="probe stop"):
            main(["figure6", "--quick", "--executor", "remote", "--jobs", "2",
                  "--batch-cells", "6"])
        assert captured["batch_size"] == 6

    def test_batch_cells_flag_validation(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):  # needs a parallel executor
            main(["figure6", "--quick", "--batch-cells", "auto"])
        with pytest.raises(SystemExit):  # bad value
            main(["figure6", "--quick", "--executor", "process", "--jobs", "2",
                  "--batch-cells", "bogus"])
        with pytest.raises(SystemExit):  # conflicts with the fleet knob
            main(["figure6", "--quick", "--executor", "remote", "--jobs", "2",
                  "--batch-cells", "4", "--batch-size", "2"])

    def test_worker_cli_rejects_bad_retry_knobs(self):
        from repro.distributed.worker import main

        with pytest.raises(SystemExit):
            main(["--connect", "127.0.0.1:1", "--max-retries", "0"])
        with pytest.raises(SystemExit):
            main(["--connect", "127.0.0.1:1", "--reconnect-attempts", "-1"])
