"""Tests for the tree/forest construction engines and the packed predictor.

The ``"stack"`` engine must be *bit-identical* to the seed ``"legacy"``
recursive builder (same node numbering, same RNG stream, same floats);
the ``"batched"`` level-synchronous engine must be deterministic and
statistically equivalent; and :class:`~repro.ml._packed.PackedForest`
must reproduce the per-tree Python prediction loop.
"""

import numpy as np
import pytest

from repro.ml import use_engines
from repro.ml._packed import PackedForest
from repro.ml.engine import get_default_engines, resolve_tree_engine
from repro.ml.forest import ExtraTreesRegressor, RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    X = rng.uniform(0.0, 10.0, size=(400, 5))
    # Duplicate feature values so ties exercise the stable-sort paths.
    X[:, 3] = np.round(X[:, 3])
    y = np.where(X[:, 0] > 5, 10.0, 1.0) + 0.4 * X[:, 1] ** 2 + 0.1 * rng.normal(size=400)
    return X, y


def assert_trees_identical(a, b):
    np.testing.assert_array_equal(a.feature, b.feature)
    np.testing.assert_array_equal(a.left, b.left)
    np.testing.assert_array_equal(a.right, b.right)
    np.testing.assert_array_equal(a.n_samples, b.n_samples)
    assert np.array_equal(a.threshold, b.threshold, equal_nan=True)
    np.testing.assert_array_equal(a.value, b.value)
    np.testing.assert_array_equal(a.impurity, b.impurity)


class TestSeedEquivalence:
    """The stack engine reproduces the seed builder node for node."""

    @pytest.mark.parametrize("splitter", ["best", "random"])
    @pytest.mark.parametrize("seed", [0, 1, 42])
    def test_stack_matches_legacy(self, data, splitter, seed):
        X, y = data
        legacy = DecisionTreeRegressor(
            splitter=splitter, random_state=seed, engine="legacy").fit(X, y)
        stack = DecisionTreeRegressor(
            splitter=splitter, random_state=seed, engine="stack").fit(X, y)
        assert_trees_identical(legacy.tree_, stack.tree_)

    @pytest.mark.parametrize("splitter", ["best", "random"])
    @pytest.mark.parametrize("kwargs", [
        dict(max_features="sqrt"),
        dict(max_features=2, max_depth=5),
        dict(min_samples_leaf=7),
        dict(min_samples_split=25, min_impurity_decrease=0.05),
    ])
    def test_stack_matches_legacy_hyperparameters(self, data, splitter, kwargs):
        X, y = data
        legacy = DecisionTreeRegressor(
            splitter=splitter, random_state=3, engine="legacy", **kwargs).fit(X, y)
        stack = DecisionTreeRegressor(
            splitter=splitter, random_state=3, engine="stack", **kwargs).fit(X, y)
        assert_trees_identical(legacy.tree_, stack.tree_)

    @pytest.mark.parametrize("cls", [RandomForestRegressor, ExtraTreesRegressor])
    def test_stack_forest_matches_legacy_forest(self, data, cls):
        X, y = data
        legacy = cls(n_estimators=6, random_state=0, engine="legacy").fit(X, y)
        stack = cls(n_estimators=6, random_state=0, engine="stack").fit(X, y)
        for a, b in zip(legacy.estimators_, stack.estimators_, strict=True):
            assert_trees_identical(a.tree_, b.tree_)
        np.testing.assert_allclose(legacy.predict(X), stack.predict(X), rtol=1e-12)


class TestBatchedEngine:
    @pytest.mark.parametrize("splitter", ["best", "random"])
    def test_deterministic_given_seed(self, data, splitter):
        X, y = data
        t1 = DecisionTreeRegressor(splitter=splitter, random_state=5,
                                   engine="batched").fit(X, y)
        t2 = DecisionTreeRegressor(splitter=splitter, random_state=5,
                                   engine="batched").fit(X, y)
        assert_trees_identical(t1.tree_, t2.tree_)

    def test_best_splitter_matches_stack_structure(self, data):
        """With all features and no RNG dependence in scoring, the batched
        best-split tree partitions the data identically (same leaf count,
        depth, and training predictions) even though node numbering is
        level-order instead of depth-first."""
        X, y = data
        batched = DecisionTreeRegressor(random_state=0, engine="batched").fit(X, y)
        stack = DecisionTreeRegressor(random_state=0, engine="stack").fit(X, y)
        assert batched.tree_.node_count == stack.tree_.node_count
        assert batched.tree_.max_depth == stack.tree_.max_depth
        np.testing.assert_allclose(batched.predict(X), stack.predict(X))

    def test_constraints_respected(self, data):
        X, y = data
        model = DecisionTreeRegressor(splitter="random", max_depth=4,
                                      min_samples_leaf=9, random_state=0,
                                      engine="batched").fit(X, y)
        assert model.get_depth() <= 4
        _, counts = np.unique(model.apply(X), return_counts=True)
        assert counts.min() >= 9

    def test_min_impurity_decrease_prunes(self, data):
        X, y = data
        loose = DecisionTreeRegressor(random_state=0, engine="batched").fit(X, y)
        strict = DecisionTreeRegressor(min_impurity_decrease=1.0, random_state=0,
                                       engine="batched").fit(X, y)
        assert strict.get_n_leaves() < loose.get_n_leaves()

    @pytest.mark.parametrize("cls", [RandomForestRegressor, ExtraTreesRegressor])
    def test_forest_quality_matches_per_tree_engines(self, data, cls):
        X, y = data
        Xtr, ytr, Xte, yte = X[:300], y[:300], X[300:], y[300:]
        batched = cls(n_estimators=20, random_state=0, engine="batched").fit(Xtr, ytr)
        stack = cls(n_estimators=20, random_state=0, engine="stack").fit(Xtr, ytr)
        r2_batched = r2_score(yte, batched.predict(Xte))
        r2_stack = r2_score(yte, stack.predict(Xte))
        assert r2_batched > 0.9
        assert abs(r2_batched - r2_stack) < 0.05

    def test_tree_independent_of_forest_size(self, data):
        """A tree's RNG stream depends only on its own frontier, so the
        first trees of differently-sized forests are identical."""
        X, y = data
        small = ExtraTreesRegressor(n_estimators=2, random_state=0,
                                    engine="batched").fit(X, y)
        large = ExtraTreesRegressor(n_estimators=6, random_state=0,
                                    engine="batched").fit(X, y)
        for a, b in zip(small.estimators_, large.estimators_[:2], strict=True):
            assert_trees_identical(a.tree_, b.tree_)

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(1).random((30, 3))
        model = DecisionTreeRegressor(engine="batched").fit(X, np.full(30, 2.5))
        assert model.get_n_leaves() == 1
        np.testing.assert_allclose(model.predict(X), 2.5)

    def test_bootstrap_oob_supported(self, data):
        X, y = data
        model = RandomForestRegressor(n_estimators=25, oob_score=True,
                                      random_state=0, engine="batched").fit(X, y)
        assert model.oob_score_ is not None and model.oob_score_ > 0.5


class TestPackedForest:
    @pytest.mark.parametrize("cls", [RandomForestRegressor, ExtraTreesRegressor])
    def test_predict_matches_per_tree_loop(self, data, cls):
        X, y = data
        forest = cls(n_estimators=12, random_state=0).fit(X, y)
        loop = np.zeros(X.shape[0])
        for tree in forest.estimators_:
            loop += tree.tree_.predict(X)
        loop /= len(forest.estimators_)
        np.testing.assert_allclose(forest.predict(X), loop, rtol=1e-12)

    def test_predict_all_shape_and_values(self, data):
        X, y = data
        forest = ExtraTreesRegressor(n_estimators=5, random_state=0).fit(X, y)
        all_preds = forest.packed_.predict_all(X[:50])
        assert all_preds.shape == (50, 5)
        for i, tree in enumerate(forest.estimators_):
            np.testing.assert_array_equal(all_preds[:, i], tree.tree_.predict(X[:50]))

    def test_predict_std_matches_stack(self, data):
        X, y = data
        forest = ExtraTreesRegressor(n_estimators=8, random_state=0).fit(X, y)
        stacked = np.stack([t.tree_.predict(X) for t in forest.estimators_])
        np.testing.assert_allclose(forest.predict_std(X), stacked.std(axis=0),
                                   rtol=1e-9, atol=1e-12)

    def test_single_node_trees(self):
        X = np.ones((10, 2))
        y = np.full(10, 3.0)
        forest = ExtraTreesRegressor(n_estimators=3, random_state=0).fit(X, y)
        np.testing.assert_allclose(forest.predict(X), 3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PackedForest([])


class TestEngineSelection:
    def test_default_engines(self):
        defaults = get_default_engines()
        assert defaults == {"tree": "stack", "forest": "batched"}

    def test_use_engines_restores(self):
        with use_engines(tree="legacy", forest="legacy"):
            assert get_default_engines() == {"tree": "legacy", "forest": "legacy"}
        assert get_default_engines() == {"tree": "stack", "forest": "batched"}

    def test_invalid_engine_rejected(self, data):
        X, y = data
        with pytest.raises(ValueError, match="engine"):
            DecisionTreeRegressor(engine="turbo").fit(X, y)
        with pytest.raises(ValueError, match="engine"):
            ExtraTreesRegressor(engine="turbo").fit(X, y)
        with pytest.raises(ValueError):
            resolve_tree_engine("warp")

    def test_engine_roundtrips_through_params(self):
        model = ExtraTreesRegressor(engine="stack")
        assert model.get_params(deep=False)["engine"] == "stack"


class TestVectorizedMaxDepth:
    @pytest.mark.parametrize("engine", ["legacy", "stack", "batched"])
    def test_matches_per_node_reference(self, data, engine):
        X, y = data
        tree = DecisionTreeRegressor(random_state=0, engine=engine).fit(X, y).tree_
        depth = np.zeros(tree.node_count, dtype=np.int64)
        for node in range(tree.node_count):
            for child in (tree.left[node], tree.right[node]):
                if child != -1:
                    depth[child] = depth[node] + 1
        assert tree.max_depth == int(depth.max())
