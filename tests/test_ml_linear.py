"""Tests for repro.ml.linear."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression, Ridge
from repro.utils.validation import NotFittedError


@pytest.fixture(scope="module")
def linear_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 3))
    coef = np.array([2.0, -1.0, 0.5])
    y = X @ coef + 3.0
    return X, y, coef


class TestLinearRegression:
    def test_recovers_exact_coefficients(self, linear_data):
        X, y, coef = linear_data
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=1e-10)
        assert model.intercept_ == pytest.approx(3.0)

    def test_predict_matches_formula(self, linear_data):
        X, y, _ = linear_data
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-10)

    def test_no_intercept(self, linear_data):
        X, y, _ = linear_data
        model = LinearRegression(fit_intercept=False).fit(X, y - 3.0)
        assert model.intercept_ == 0.0

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict([[1.0]])

    def test_feature_mismatch(self, linear_data):
        X, y, _ = linear_data
        model = LinearRegression().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(X[:, :2])


class TestRidge:
    def test_zero_alpha_matches_ols(self, linear_data):
        X, y, coef = linear_data
        model = Ridge(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=1e-8)

    def test_large_alpha_shrinks_coefficients(self, linear_data):
        X, y, _ = linear_data
        small = Ridge(alpha=1e-6).fit(X, y)
        big = Ridge(alpha=1e4).fit(X, y)
        assert np.linalg.norm(big.coef_) < np.linalg.norm(small.coef_)

    def test_handles_collinear_features(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=100)
        X = np.column_stack([x, x, x])  # perfectly collinear
        y = 3 * x + 1
        model = Ridge(alpha=1.0).fit(X, y)
        assert np.all(np.isfinite(model.coef_))

    def test_negative_alpha_rejected(self, linear_data):
        X, y, _ = linear_data
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0).fit(X, y)
