"""Fault-injection tests (`repro.testing.faults`) — the robustness proofs.

Covers the harness itself (programmable corruption/errors/delays under
the checksum layer, frame-aware socket faults), every
`ObjectStoreBackend` error path the retry policy must absorb (HTTP 5xx
bursts, connection refused, mid-body truncation, slow-server timeouts),
`DatasetStore` reject-and-regenerate through the harness, and the
end-to-end chaos run: a worker fleet against a fault-injected object
store still produces rows bit-identical to serial.
"""

from __future__ import annotations

import http.client
import socket
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.datasets import DatasetSpec, DatasetStore
from repro.datasets.backends import (
    IntegrityError,
    LocalBackend,
    MemoryBackend,
    ObjectStoreBackend,
    checksum_key,
    sha256_hex,
)
from repro.datasets.object_server import ObjectStoreServer
from repro.distributed import protocol
from repro.testing import FaultyBackend, FaultySocket, flip_bit
from repro.utils.retry import RetryPolicy

SPEC = DatasetSpec("stencil-blocked", max_configs=60, random_state=0)

#: Keep test retries fast: same shape as production, millisecond delays.
FAST = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


class TestFlipBit:
    def test_flips_exactly_one_bit(self):
        data = b"\x00\x00"
        assert flip_bit(data) == b"\x01\x00"
        assert flip_bit(data, bit=9) == b"\x00\x02"
        assert flip_bit(b"") == b""

    def test_roundtrip_restores(self):
        assert flip_bit(flip_bit(b"payload")) == b"payload"


class TestFaultyBackend:
    def test_error_fires_times_then_clears(self):
        backend = FaultyBackend(MemoryBackend())
        backend.write("datasets/a.npz", b"alpha")
        backend.inject_error(ConnectionResetError("reset"), op="read", times=2)
        for _ in range(2):
            with pytest.raises(ConnectionResetError):
                backend.read("datasets/a.npz")
        assert backend.read("datasets/a.npz") == b"alpha"
        assert [e["kind"] for e in backend.log] == ["error", "error"]

    def test_key_and_op_filters(self):
        backend = FaultyBackend(MemoryBackend())
        backend.write("datasets/a.npz", b"alpha")
        backend.write("caches/c.npz", b"gamma")
        backend.inject_error(OSError("no"), op="read", key="caches/", times=None)
        assert backend.read("datasets/a.npz") == b"alpha"  # unmatched key
        backend.exists("caches/c.npz")                     # unmatched op
        with pytest.raises(OSError):
            backend.read("caches/c.npz")

    def test_read_corruption_is_caught_by_the_checksum_layer(self):
        """An injected bit-flip below the template read() must surface as
        IntegrityError, never as corrupt bytes."""
        backend = FaultyBackend(MemoryBackend())
        backend.write("datasets/a.npz", b"alpha")
        backend.inject_corruption(op="read", times=1)
        with pytest.raises(IntegrityError):
            backend.read("datasets/a.npz")
        assert backend.read("datasets/a.npz") == b"alpha"  # fault consumed

    def test_write_corruption_lands_a_detectable_torn_blob(self):
        backend = FaultyBackend(MemoryBackend())
        backend.inject_corruption(op="write", times=1)
        backend.write("datasets/a.npz", b"alpha")
        # Sidecar records the intended digest; the blob is torn.
        sidecar = backend.inner._read(checksum_key("datasets/a.npz"))
        assert sidecar.decode() == sha256_hex(b"alpha")
        with pytest.raises(IntegrityError):
            backend.read("datasets/a.npz")

    def test_corruption_skips_checksum_sidecars_by_default(self):
        backend = FaultyBackend(MemoryBackend())
        backend.write("datasets/a.npz", b"alpha")
        backend.inject_corruption(op="read", times=None)
        with pytest.raises(IntegrityError):
            backend.read("datasets/a.npz")
        for entry in backend.log:
            assert not entry["key"].endswith(".sha256")

    def test_delay_and_log_text(self):
        slept: list[float] = []
        backend = FaultyBackend(MemoryBackend())
        backend._sleep = slept.append
        backend.write("datasets/a.npz", b"alpha")
        backend.inject_delay(1.5, op="read", times=1)
        assert backend.read("datasets/a.npz") == b"alpha"
        assert slept == [1.5]
        assert "delay" in backend.log_text()
        assert "datasets/a.npz" in backend.log_text()


class _TruncatingServer:
    """Answers every GET with a Content-Length it never delivers."""

    def __init__(self) -> None:
        self.connections = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._thread = threading.Thread(target=self._serve, daemon=True)

    @property
    def url(self) -> str:
        host, port = self._sock.getsockname()[:2]
        return f"http://{host}:{port}/"

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            try:
                conn.recv(1 << 16)
                conn.sendall(b"HTTP/1.1 200 OK\r\n"
                             b"Content-Type: application/octet-stream\r\n"
                             b"Content-Length: 4096\r\n\r\n"
                             b"only-these-bytes-arrive")
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> _TruncatingServer:
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class TestObjectStoreErrorPaths:
    """Satellite: each transport failure mode, with attempt counts."""

    @pytest.fixture()
    def faulty_server(self):
        with ObjectStoreServer(FaultyBackend(MemoryBackend())) as server:
            yield server

    def test_5xx_burst_is_retried_to_success(self, faulty_server):
        client = ObjectStoreBackend(faulty_server.url, retry=FAST)
        client.write("datasets/a.npz", b"alpha")
        faulty_server.backend.inject_error(
            RuntimeError("disk on fire"), op="read", times=2)
        assert client.read("datasets/a.npz") == b"alpha"
        assert client.retries == 2          # two 500s, then success
        assert faulty_server.stats["errors"] == 2

    def test_5xx_exhaustion_raises_the_final_error(self, faulty_server):
        client = ObjectStoreBackend(faulty_server.url, retry=FAST)
        client.write("datasets/a.npz", b"alpha")
        faulty_server.backend.inject_error(
            RuntimeError("dead disk"), op="read", times=None)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            client.read("datasets/a.npz")
        assert excinfo.value.code == 500
        assert client.retries == FAST.max_attempts - 1  # full budget spent

    def test_4xx_is_permanent_and_never_retried(self, faulty_server):
        client = ObjectStoreBackend(faulty_server.url, retry=FAST)
        with pytest.raises(KeyError):
            client.read("datasets/nope.npz")
        assert client.retries == 0

    def test_connection_refused_retries_then_raises(self):
        # Port 1 on loopback refuses instantly; nothing ever listens.
        client = ObjectStoreBackend("http://127.0.0.1:1/", retry=FAST)
        with pytest.raises(OSError):
            client.read("datasets/a.npz")
        assert client.retries == FAST.max_attempts - 1

    def test_mid_body_truncation_retries_then_raises(self):
        with _TruncatingServer() as server:
            client = ObjectStoreBackend(server.url, retry=FAST, timeout=5.0)
            with pytest.raises(http.client.IncompleteRead):
                client.read("datasets/a.npz")
            assert server.connections == FAST.max_attempts
            assert client.retries == FAST.max_attempts - 1

    def test_slow_server_attempt_times_out_and_retries(self, faulty_server):
        client = ObjectStoreBackend(faulty_server.url, retry=FAST, timeout=0.3)
        client.write("datasets/a.npz", b"alpha")
        faulty_server.backend.inject_delay(1.2, op="read", times=1)
        assert client.read("datasets/a.npz") == b"alpha"
        assert client.retries == 1          # one timed-out attempt

    def test_corrupt_put_is_rejected_with_422(self, faulty_server):
        request = urllib.request.Request(
            faulty_server.url + "datasets/a.npz", data=b"corrupted-in-flight",
            method="PUT")
        request.add_header("X-Repro-SHA256", sha256_hex(b"what-was-sent"))
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 422
        assert faulty_server.stats["rejected_puts"] == 1
        client = ObjectStoreBackend(faulty_server.url, retry=FAST)
        assert not client.exists("datasets/a.npz")  # nothing was stored


class TestWireFaults:
    def test_corrupted_frame_fails_the_crc_check(self):
        left, right = socket.socketpair()
        try:
            faulty = FaultySocket(left, corrupt_frames={2})
            protocol.send_message(faulty, protocol.Heartbeat("w1"))
            assert protocol.recv_message(right) == protocol.Heartbeat("w1")
            protocol.send_message(faulty, protocol.Heartbeat("w2"))
            with pytest.raises(protocol.ProtocolError, match="CRC"):
                protocol.recv_message(right)
            assert [e["kind"] for e in faulty.log] == ["corrupt"]
        finally:
            left.close()
            right.close()

    def test_drop_after_cuts_the_connection(self):
        left, right = socket.socketpair()
        try:
            faulty = FaultySocket(left, drop_after=1)
            protocol.send_message(faulty, protocol.Heartbeat("w1"))
            with pytest.raises(ConnectionError):
                protocol.send_message(faulty, protocol.Heartbeat("w2"))
        finally:
            right.close()


class TestStoreChaos:
    def test_store_rejects_and_regenerates_through_the_harness(self, tmp_path):
        backend = FaultyBackend(LocalBackend(tmp_path))
        store = DatasetStore(backend)
        first = store.get(SPEC)
        backend.inject_corruption(op="read", key="datasets/", times=1)
        again = store.get(SPEC)
        assert store.integrity_failures == 1
        np.testing.assert_array_equal(again.X, first.X)
        np.testing.assert_array_equal(again.y, first.y)
        # The store healed itself: the rebuilt blob verifies cleanly.
        fresh = DatasetStore(LocalBackend(tmp_path))
        fresh.get(SPEC)
        assert (fresh.misses, fresh.hits) == (0, 1)

    def test_cache_corruption_forces_rewarm_not_garbage(self, tmp_path):
        from repro.analytical import AnalyticalPredictionCache
        from repro.experiments.plan import build_analytical

        backend = FaultyBackend(LocalBackend(tmp_path))
        store = DatasetStore(backend)
        dataset = store.get(SPEC)
        model = build_analytical("stencil")
        cache = AnalyticalPredictionCache(
            model, dataset.feature_names).warm(dataset.X)
        store.save_analytical_cache("stencil", SPEC, cache)
        backend.inject_corruption(op="read", key="caches/", times=1)
        reloaded = store.load_analytical_cache(
            "stencil", SPEC, model, dataset.feature_names)
        assert reloaded is None              # rejected, reported as a miss
        assert store.integrity_failures == 1
        reloaded = store.load_analytical_cache(
            "stencil", SPEC, model, dataset.feature_names)
        assert reloaded is None              # corrupt entry was discarded


class TestChaosFleet:
    """The acceptance criterion: bit-identical rows under injected faults."""

    def test_fleet_bit_identical_under_store_chaos(self):
        from repro.distributed.coordinator import Coordinator
        from repro.distributed.worker import FleetWorker
        from repro.experiments import ExperimentSettings
        from repro.experiments.plan import experiment_plan
        from repro.experiments.scheduler import run_plan

        tiny = ExperimentSettings(n_estimators=4, n_repeats=2,
                                  max_configs=120, random_state=0)
        plan = experiment_plan("figure6", tiny)
        serial = run_plan(plan)

        faulty = FaultyBackend(MemoryBackend())
        with ObjectStoreServer(faulty) as server:
            shared = DatasetStore(server.url)
            run_plan(plan, store=shared)  # seed the object store
            # Chaos: every dataset read is served corrupted (the checksum
            # catches it; the driver regenerates, workers degrade to
            # relay), and cache reads hit a 500 burst (the client's
            # retry policy absorbs it).
            faulty.inject_corruption(op="read", key="datasets/", times=None)
            faulty.inject_error(RuntimeError("error burst"), op="read",
                                key="caches/", times=2)
            with Coordinator() as coordinator:
                workers = [
                    FleetWorker(coordinator.address,
                                retry=RetryPolicy(max_attempts=4,
                                                  base_delay=0.01))
                    for _ in range(2)
                ]
                threads = [threading.Thread(target=w.run, daemon=True)
                           for w in workers]
                for thread in threads:
                    thread.start()
                chaotic = run_plan(plan, executor="remote", fleet=coordinator,
                                   store=DatasetStore(server.url))
            for thread in threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive()

        assert (chaotic.rows(), chaotic.extra) == (serial.rows(), serial.extra)
        # The faults really fired and were survived, not skipped.
        assert {e["kind"] for e in faulty.log} == {"corrupt", "error"}
        assert sum(w.direct_fetch_errors for w in workers) >= 1
        assert sum(w.relay_fetches for w in workers) >= 1
        assert sum(w.direct_fetches for w in workers) >= 1
        assert faulty.log_text()
