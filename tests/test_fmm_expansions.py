"""Tests for repro.fmm.expansions (multi-index sets and Taylor machinery)."""

import math

import numpy as np
import pytest

from repro.fmm.expansions import CartesianExpansion, MultiIndexSet, taylor_coefficients


class TestMultiIndexSet:
    def test_term_count_formula(self):
        # Number of multi-indices with |n| <= p is C(p+3, 3).
        for p in range(0, 7):
            assert MultiIndexSet(p).n_terms == math.comb(p + 3, 3)

    def test_indices_sorted_by_degree(self):
        mset = MultiIndexSet(4)
        degrees = mset.degrees
        assert np.all(np.diff(degrees) >= 0)

    def test_index_of_roundtrip(self):
        mset = MultiIndexSet(3)
        for i, idx in enumerate(mset.indices):
            assert mset.index_of(tuple(idx)) == i
        assert mset.index_of((5, 5, 5)) == -1

    def test_factorials(self):
        mset = MultiIndexSet(3)
        i = mset.index_of((2, 1, 0))
        assert mset.factorials[i] == 2.0
        i = mset.index_of((1, 1, 1))
        assert mset.factorials[i] == 1.0
        i = mset.index_of((3, 0, 0))
        assert mset.factorials[i] == 6.0

    def test_monomials_against_direct_evaluation(self):
        mset = MultiIndexSet(3)
        rng = np.random.default_rng(0)
        dx = rng.uniform(-1, 1, (5, 3))
        mono = mset.monomials(dx)
        for p in range(5):
            for t, (nx, ny, nz) in enumerate(mset.indices):
                expected = dx[p, 0] ** nx * dx[p, 1] ** ny * dx[p, 2] ** nz
                assert mono[p, t] == pytest.approx(expected, rel=1e-12)

    def test_monomials_shape_check(self):
        with pytest.raises(ValueError):
            MultiIndexSet(2).monomials(np.zeros((3, 2)))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            MultiIndexSet(-1)


class TestTaylorCoefficients:
    def test_taylor_series_approximates_kernel(self):
        mset = MultiIndexSet(8)
        rng = np.random.default_rng(1)
        R = np.array([[2.0, -1.0, 0.5]])
        T = taylor_coefficients(mset, R)[:, 0]
        for _ in range(5):
            t = rng.uniform(-0.1, 0.1, 3)
            exact = 1.0 / np.linalg.norm(R[0] + t)
            approx = float(mset.monomials(t.reshape(1, 3))[0] @ T)
            assert approx == pytest.approx(exact, rel=1e-8)

    def test_low_order_coefficients_closed_form(self):
        mset = MultiIndexSet(2)
        R = np.array([[1.0, 2.0, -2.0]])
        r = 3.0
        T = taylor_coefficients(mset, R)[:, 0]
        assert T[mset.index_of((0, 0, 0))] == pytest.approx(1.0 / r)
        assert T[mset.index_of((1, 0, 0))] == pytest.approx(-1.0 / r ** 3)
        assert T[mset.index_of((0, 1, 0))] == pytest.approx(-2.0 / r ** 3)
        assert T[mset.index_of((2, 0, 0))] == pytest.approx((3 * 1.0 - r ** 2) / (2 * r ** 5))
        assert T[mset.index_of((1, 1, 0))] == pytest.approx(3 * 1.0 * 2.0 / r ** 5)

    def test_batched_matches_individual(self):
        mset = MultiIndexSet(4)
        rng = np.random.default_rng(2)
        R = rng.uniform(1.0, 3.0, (6, 3))
        batched = taylor_coefficients(mset, R)
        for j in range(6):
            single = taylor_coefficients(mset, R[j])[:, 0]
            np.testing.assert_allclose(batched[:, j], single, rtol=1e-12)

    def test_zero_separation_rejected(self):
        with pytest.raises(ValueError):
            taylor_coefficients(MultiIndexSet(2), np.zeros((1, 3)))


class TestCartesianExpansion:
    def test_term_counts(self):
        exp = CartesianExpansion(order=4)
        assert exp.n_terms == math.comb(3 + 3, 3)          # degree <= 3
        assert exp.mset_ext.order == 6

    def test_shift_matrix_identity_for_zero_shift(self):
        exp = CartesianExpansion(order=3)
        S = exp.m2m_matrix(np.zeros(3))
        np.testing.assert_allclose(S, np.eye(exp.n_terms))
        L = exp.l2l_matrix(np.zeros(3))
        np.testing.assert_allclose(L, np.eye(exp.n_terms))

    def test_m2m_translation_composes(self):
        # Shifting by a then b equals shifting by a+b.
        exp = CartesianExpansion(order=4)
        rng = np.random.default_rng(3)
        a, b = rng.uniform(-0.5, 0.5, 3), rng.uniform(-0.5, 0.5, 3)
        S_ab = exp.m2m_matrix(a + b)
        S_two = exp.m2m_matrix(a) @ exp.m2m_matrix(b)
        np.testing.assert_allclose(S_ab, S_two, atol=1e-12)

    def test_l2l_translation_composes(self):
        exp = CartesianExpansion(order=4)
        rng = np.random.default_rng(4)
        a, b = rng.uniform(-0.5, 0.5, 3), rng.uniform(-0.5, 0.5, 3)
        L_ab = exp.l2l_matrix(a + b)
        L_two = exp.l2l_matrix(b) @ exp.l2l_matrix(a)
        np.testing.assert_allclose(L_ab, L_two, atol=1e-12)

    def test_shift_matrix_cache_reuse(self):
        exp = CartesianExpansion(order=3)
        s = np.array([0.25, -0.25, 0.25])
        m1 = exp.m2m_matrix(s)
        m2 = exp.m2m_matrix(s)
        assert m1 is m2   # cached object

    def test_m2l_apply_shape_check(self):
        exp = CartesianExpansion(order=3)
        with pytest.raises(ValueError):
            exp.m2l_apply(np.zeros((5, 2)), np.zeros((exp.mset_ext.n_terms, 2)))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            CartesianExpansion(order=0)
