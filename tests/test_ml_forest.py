"""Tests for repro.ml.forest (random forests and extra trees)."""

import numpy as np
import pytest

from repro.ml.forest import ExtraTreesRegressor, RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.utils.validation import NotFittedError


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(5)
    X = rng.uniform(0, 5, size=(300, 4))
    y = X[:, 0] ** 2 + np.sin(X[:, 1] * 2) + 0.1 * rng.normal(size=300)
    return X[:220], y[:220], X[220:], y[220:]


@pytest.mark.parametrize("cls", [RandomForestRegressor, ExtraTreesRegressor])
class TestForests:
    def test_fit_predict_generalization(self, data, cls):
        Xtr, ytr, Xte, yte = data
        model = cls(n_estimators=20, random_state=0).fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.85

    def test_deterministic_with_seed(self, data, cls):
        Xtr, ytr, Xte, _ = data
        p1 = cls(n_estimators=10, random_state=1).fit(Xtr, ytr).predict(Xte)
        p2 = cls(n_estimators=10, random_state=1).fit(Xtr, ytr).predict(Xte)
        np.testing.assert_array_equal(p1, p2)

    def test_different_seeds_differ(self, data, cls):
        Xtr, ytr, Xte, _ = data
        p1 = cls(n_estimators=5, random_state=1).fit(Xtr, ytr).predict(Xte)
        p2 = cls(n_estimators=5, random_state=2).fit(Xtr, ytr).predict(Xte)
        assert not np.array_equal(p1, p2)

    def test_n_estimators_respected(self, data, cls):
        Xtr, ytr, _, _ = data
        model = cls(n_estimators=7, random_state=0).fit(Xtr, ytr)
        assert len(model.estimators_) == 7

    def test_predict_std_shape_and_nonnegative(self, data, cls):
        Xtr, ytr, Xte, _ = data
        model = cls(n_estimators=10, random_state=0).fit(Xtr, ytr)
        std = model.predict_std(Xte)
        assert std.shape == (len(Xte),)
        assert np.all(std >= 0)

    def test_feature_importances(self, data, cls):
        Xtr, ytr, _, _ = data
        model = cls(n_estimators=10, random_state=0).fit(Xtr, ytr)
        imp = model.feature_importances_
        assert imp.shape == (4,)
        assert imp.sum() == pytest.approx(1.0)
        # Features 0 and 1 drive the target; features 2, 3 are noise.
        assert imp[0] + imp[1] > imp[2] + imp[3]

    def test_unfitted_predict_raises(self, cls):
        with pytest.raises(NotFittedError):
            cls().predict([[0.0, 0.0, 0.0, 0.0]])

    def test_feature_mismatch(self, data, cls):
        Xtr, ytr, _, _ = data
        model = cls(n_estimators=3, random_state=0).fit(Xtr, ytr)
        with pytest.raises(ValueError):
            model.predict(Xtr[:, :2])

    def test_invalid_n_estimators(self, data, cls):
        Xtr, ytr, _, _ = data
        with pytest.raises(ValueError):
            cls(n_estimators=0).fit(Xtr, ytr)


class TestEnsembleBehaviour:
    def test_ensemble_beats_single_tree_out_of_sample(self, data):
        from repro.ml.tree import DecisionTreeRegressor

        Xtr, ytr, Xte, yte = data
        tree = DecisionTreeRegressor(random_state=0).fit(Xtr, ytr)
        forest = ExtraTreesRegressor(n_estimators=30, random_state=0).fit(Xtr, ytr)
        assert r2_score(yte, forest.predict(Xte)) >= r2_score(yte, tree.predict(Xte))

    def test_extra_trees_default_no_bootstrap(self, data):
        Xtr, ytr, _, _ = data
        et = ExtraTreesRegressor(n_estimators=3, random_state=0)
        rf = RandomForestRegressor(n_estimators=3, random_state=0)
        assert et._default_bootstrap is False
        assert rf._default_bootstrap is True

    def test_oob_score_available_with_bootstrap(self, data):
        Xtr, ytr, _, _ = data
        model = RandomForestRegressor(n_estimators=25, oob_score=True, random_state=0)
        model.fit(Xtr, ytr)
        assert model.oob_prediction_ is not None
        assert model.oob_score_ is not None
        assert model.oob_score_ > 0.5

    def test_oob_requires_bootstrap(self, data):
        Xtr, ytr, _, _ = data
        with pytest.raises(ValueError, match="bootstrap"):
            ExtraTreesRegressor(n_estimators=3, oob_score=True, bootstrap=False).fit(Xtr, ytr)

    def test_parallel_fit_matches_serial(self, data):
        Xtr, ytr, Xte, _ = data
        serial = ExtraTreesRegressor(n_estimators=8, random_state=0, n_jobs=1).fit(Xtr, ytr)
        threaded = ExtraTreesRegressor(n_estimators=8, random_state=0, n_jobs=4).fit(Xtr, ytr)
        np.testing.assert_allclose(serial.predict(Xte), threaded.predict(Xte))
