"""Tests for repro.parallel.communicator."""

import numpy as np
import pytest

from repro.parallel.communicator import SimCommunicator


class TestSimCommunicator:
    def test_bcast(self):
        comm = SimCommunicator(4)
        received = comm.bcast({"a": 1}, root=0)
        assert len(received) == 4
        assert all(r == {"a": 1} for r in received)

    def test_scatter_gather_roundtrip(self):
        comm = SimCommunicator(3)
        chunks = [np.full(2, i) for i in range(3)]
        scattered = comm.scatter(chunks, root=0)
        gathered = comm.gather(scattered, root=0)
        for i, arr in enumerate(gathered):
            np.testing.assert_array_equal(arr, np.full(2, i))

    def test_scatter_wrong_count(self):
        with pytest.raises(ValueError):
            SimCommunicator(3).scatter([1, 2], root=0)

    def test_allgather(self):
        comm = SimCommunicator(3)
        out = comm.allgather([1, 2, 3])
        assert out == [[1, 2, 3]] * 3

    def test_allreduce_default_sum(self):
        comm = SimCommunicator(4)
        out = comm.allreduce([1, 2, 3, 4])
        assert out == [10] * 4

    def test_allreduce_custom_op(self):
        comm = SimCommunicator(3)
        out = comm.allreduce([5, 2, 9], op=max)
        assert out == [9, 9, 9]

    def test_alltoall(self):
        comm = SimCommunicator(2)
        send = [["a->a", "a->b"], ["b->a", "b->b"]]
        recv = comm.alltoall(send)
        assert recv[0] == ["a->a", "b->a"]
        assert recv[1] == ["a->b", "b->b"]

    def test_alltoall_shape_check(self):
        with pytest.raises(ValueError):
            SimCommunicator(2).alltoall([[1], [2, 3]])

    def test_traffic_accounting(self):
        comm = SimCommunicator(4)
        comm.bcast(np.zeros(10), root=0)
        assert comm.bytes_sent == 3 * 80
        assert comm.n_messages == 3
        comm.reset_counters()
        assert comm.bytes_sent == 0

    def test_invalid_size_and_rank(self):
        with pytest.raises(ValueError):
            SimCommunicator(0)
        with pytest.raises(ValueError):
            SimCommunicator(2).bcast(1, root=5)
