"""Tests for repro.ml.neighbors."""

import numpy as np
import pytest

from repro.ml.neighbors import KNeighborsRegressor


class TestKNeighborsRegressor:
    def test_one_neighbor_memorizes_training_data(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([10.0, 20.0, 30.0])
        model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)

    def test_uniform_weights_average(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 2.0, 100.0])
        model = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        # Query at 0.4: two nearest are 0.0 and 1.0 -> mean 1.0.
        assert model.predict([[0.4]])[0] == pytest.approx(1.0)

    def test_distance_weights_favor_closer_point(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        model = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
        assert model.predict([[0.1]])[0] < 5.0

    def test_exact_match_with_distance_weights(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([5.0, 6.0, 7.0])
        model = KNeighborsRegressor(n_neighbors=3, weights="distance").fit(X, y)
        assert model.predict([[1.0]])[0] == pytest.approx(6.0)

    def test_k_larger_than_dataset_is_capped(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([1.0, 3.0])
        model = KNeighborsRegressor(n_neighbors=10).fit(X, y)
        assert model.predict([[0.5]])[0] == pytest.approx(2.0)

    def test_blockwise_prediction_consistency(self):
        rng = np.random.default_rng(0)
        X = rng.random((2000, 3))
        y = X.sum(axis=1)
        model = KNeighborsRegressor(n_neighbors=4).fit(X, y)
        q = rng.random((1500, 3))
        preds = model.predict(q)  # crosses the 1024 block boundary
        assert preds.shape == (1500,)
        assert np.all(np.isfinite(preds))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(n_neighbors=0).fit([[0.0]], [1.0])
        with pytest.raises(ValueError):
            KNeighborsRegressor(weights="gaussian").fit([[0.0]], [1.0])

    def test_feature_mismatch(self):
        model = KNeighborsRegressor().fit([[0.0, 1.0]], [1.0])
        with pytest.raises(ValueError):
            model.predict([[1.0]])
