"""Tests for repro.ml.model_selection."""

import numpy as np
import pytest

from repro.ml.linear import Ridge
from repro.ml.metrics import mean_absolute_percentage_error
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    cross_val_score,
    train_test_split,
)
from repro.ml.tree import DecisionTreeRegressor


class TestTrainTestSplit:
    def test_default_split_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        Xtr, Xte = train_test_split(X, random_state=0)
        assert len(Xtr) == 75 and len(Xte) == 25

    def test_fraction_and_count(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.arange(50)
        Xtr, Xte, ytr, yte = train_test_split(X, y, train_size=0.2, random_state=0)
        assert len(Xtr) == 10 and len(Xte) == 40
        Xtr, Xte = train_test_split(X, train_size=7, random_state=0)
        assert len(Xtr) == 7

    def test_no_overlap_and_full_coverage(self):
        X = np.arange(30).reshape(-1, 1)
        Xtr, Xte = train_test_split(X, train_size=0.5, random_state=1)
        combined = sorted(np.concatenate([Xtr, Xte]).ravel().tolist())
        assert combined == list(range(30))

    def test_rows_stay_aligned_across_arrays(self):
        X = np.arange(40).reshape(-1, 1)
        y = np.arange(40) * 10
        Xtr, Xte, ytr, yte = train_test_split(X, y, train_size=0.5, random_state=3)
        np.testing.assert_array_equal(Xtr.ravel() * 10, ytr)

    def test_deterministic_with_seed(self):
        X = np.arange(20).reshape(-1, 1)
        a = train_test_split(X, random_state=5)[0]
        b = train_test_split(X, random_state=5)[0]
        np.testing.assert_array_equal(a, b)

    def test_no_shuffle(self):
        X = np.arange(10).reshape(-1, 1)
        Xtr, _ = train_test_split(X, train_size=4, shuffle=False)
        np.testing.assert_array_equal(Xtr.ravel(), [0, 1, 2, 3])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(5), np.arange(4))

    def test_invalid_sizes(self):
        X = np.arange(10).reshape(-1, 1)
        with pytest.raises(ValueError):
            train_test_split(X, train_size=1.5)
        with pytest.raises(ValueError):
            train_test_split(X, train_size=5, test_size=6)


class TestKFold:
    def test_folds_partition_everything(self):
        folds = list(KFold(n_splits=4).split(22))
        assert len(folds) == 4
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(22))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=3).split(15):
            assert set(train).isdisjoint(set(test))
            assert len(train) + len(test) == 15

    def test_shuffle_determinism(self):
        a = [t.tolist() for _, t in KFold(n_splits=3, shuffle=True, random_state=1).split(12)]
        b = [t.tolist() for _, t in KFold(n_splits=3, shuffle=True, random_state=1).split(12)]
        assert a == b

    def test_accepts_sequence(self):
        folds = list(KFold(n_splits=2).split([1, 2, 3, 4]))
        assert len(folds) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))


class TestCrossValScoreAndGrid:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 5, size=(120, 2))
        y = 2 * X[:, 0] + X[:, 1] ** 2
        return X, y

    def test_cross_val_score_shape(self, data):
        X, y = data
        scores = cross_val_score(Ridge(alpha=0.1), X, y, cv=4, random_state=0)
        assert scores.shape == (4,)

    def test_custom_scoring(self, data):
        X, y = data
        scores = cross_val_score(DecisionTreeRegressor(random_state=0), X, y, cv=3,
                                 scoring=mean_absolute_percentage_error, random_state=0)
        assert np.all(scores >= 0)

    def test_parameter_grid_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(grid) == 6 and len(combos) == 6
        assert {"a": 1, "b": "x"} in combos

    def test_parameter_grid_invalid(self):
        with pytest.raises(ValueError):
            ParameterGrid({})
        with pytest.raises(ValueError):
            ParameterGrid({"a": []})

    def test_grid_search_finds_reasonable_depth(self, data):
        X, y = data
        search = GridSearchCV(
            estimator=DecisionTreeRegressor(random_state=0),
            param_grid={"max_depth": [1, 8]},
            cv=3, random_state=0,
        ).fit(X, y)
        assert search.best_params_["max_depth"] == 8
        assert search.predict(X).shape == y.shape
        assert len(search.cv_results_) == 2

    def test_grid_search_lower_is_better_mode(self, data):
        X, y = data
        search = GridSearchCV(
            estimator=DecisionTreeRegressor(random_state=0),
            param_grid={"max_depth": [1, 8]},
            cv=3, scoring=mean_absolute_percentage_error, greater_is_better=False,
            random_state=0,
        ).fit(X, y)
        assert search.best_params_["max_depth"] == 8
