"""Tests for repro.stencil.grid."""

import numpy as np
import pytest

from repro.stencil.grid import Grid3D


class TestGrid3D:
    def test_shapes_and_padding(self):
        grid = Grid3D(shape=(4, 5, 6))
        assert grid.I == 4 and grid.J == 5 and grid.K == 6
        assert grid.padded_shape == (6, 7, 8)
        assert grid.n_interior == 120
        assert grid.interior.shape == (4, 5, 6)
        assert grid.data.shape == (6, 7, 8)

    def test_higher_order_padding(self):
        grid = Grid3D(shape=(4, 4, 4), order=2)
        assert grid.padded_shape == (8, 8, 8)

    def test_fill(self):
        grid = Grid3D(shape=(3, 3, 3)).fill(2.5)
        assert np.all(grid.data == 2.5)

    def test_fill_random_deterministic(self):
        a = Grid3D(shape=(3, 3, 3)).fill_random(0).data
        b = Grid3D(shape=(3, 3, 3)).fill_random(0).data
        np.testing.assert_array_equal(a, b)

    def test_fill_function_sets_interior(self):
        grid = Grid3D(shape=(5, 5, 5))
        grid.fill_function(lambda x, y, z: x + y + z)
        assert grid.interior[0, 0, 0] == pytest.approx(0.0)
        assert grid.interior[-1, -1, -1] == pytest.approx(3.0)

    def test_fill_function_clamps_ghosts(self):
        grid = Grid3D(shape=(4, 4, 4))
        grid.fill_function(lambda x, y, z: x)
        # Ghost layer equals the adjacent interior value (clamped extension).
        np.testing.assert_allclose(grid.data[0, 1:-1, 1:-1], grid.data[1, 1:-1, 1:-1])
        np.testing.assert_allclose(grid.data[-1, 1:-1, 1:-1], grid.data[-2, 1:-1, 1:-1])

    def test_interior_is_view(self):
        grid = Grid3D(shape=(3, 3, 3))
        grid.interior[...] = 7.0
        assert grid.data[1, 1, 1] == 7.0
        assert grid.data[0, 0, 0] == 0.0

    def test_copy_is_independent(self):
        grid = Grid3D(shape=(3, 3, 3)).fill(1.0)
        other = grid.copy()
        other.data[...] = 9.0
        assert np.all(grid.data == 1.0)

    def test_memory_bytes(self):
        grid = Grid3D(shape=(2, 2, 2))
        assert grid.memory_bytes() == 4 * 4 * 4 * 8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Grid3D(shape=(0, 2, 2))
        with pytest.raises(ValueError):
            Grid3D(shape=(2, 2))
        with pytest.raises(ValueError):
            Grid3D(shape=(2, 2, 2), order=0)
