"""Tests for the pluggable DatasetStore backends (`repro.datasets.backends`).

Covers the backend contract (read/write/exists/list/delete + locators)
uniformly across the local, in-memory and HTTP object-store backends,
the `--store-url` resolver registry, the bundled object server's API
edges (404s, prefix listing, path-traversal rejection), the atomic-write
regressions (a failed local write must not leak its temp file; `prune`
must collect orphaned temp files) and the CLI integration.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.datasets import DatasetSpec, DatasetStore
from repro.datasets.backends import (
    LocalBackend,
    MemoryBackend,
    ObjectStoreBackend,
    backend_schemes,
    checksum_key,
    is_checksum_key,
    resolve_backend,
    sha256_hex,
)
from repro.datasets.object_server import ObjectStoreServer

SPEC = DatasetSpec("stencil-blocked", max_configs=60, random_state=0)
OTHER = DatasetSpec("stencil-blocked", max_configs=40, random_state=0)


@pytest.fixture()
def object_server():
    with ObjectStoreServer(MemoryBackend()) as server:
        yield server


@pytest.fixture(params=["local", "memory", "http"])
def backend(request, tmp_path, object_server):
    if request.param == "local":
        return LocalBackend(tmp_path / "store")
    if request.param == "memory":
        return MemoryBackend()
    return ObjectStoreBackend(object_server.url)


class TestBackendContract:
    def test_write_read_round_trip(self, backend):
        backend.write("datasets/a.npz", b"alpha")
        backend.write("caches/b.npz", b"beta")
        assert backend.read("datasets/a.npz") == b"alpha"
        assert backend.read("caches/b.npz") == b"beta"

    def test_overwrite_replaces(self, backend):
        backend.write("datasets/a.npz", b"old")
        backend.write("datasets/a.npz", b"new")
        assert backend.read("datasets/a.npz") == b"new"

    def test_missing_key_raises_keyerror(self, backend):
        with pytest.raises(KeyError):
            backend.read("datasets/nope.npz")
        with pytest.raises(KeyError):
            backend.delete("datasets/nope.npz")
        assert not backend.exists("datasets/nope.npz")

    def test_exists_and_delete(self, backend):
        backend.write("datasets/a.npz", b"alpha")
        assert backend.exists("datasets/a.npz")
        backend.delete("datasets/a.npz")
        assert not backend.exists("datasets/a.npz")

    def test_list_is_sorted_and_prefix_filtered(self, backend):
        backend.write("datasets/b.npz", b"1")
        backend.write("datasets/a.npz", b"2")
        backend.write("caches/c.npz", b"3")
        # Checksum sidecars are real keys and are listed alongside blobs.
        assert backend.list() == [
            "caches/c.npz", "caches/c.npz.sha256",
            "datasets/a.npz", "datasets/a.npz.sha256",
            "datasets/b.npz", "datasets/b.npz.sha256",
        ]
        assert backend.list("datasets/") == [
            "datasets/a.npz", "datasets/a.npz.sha256",
            "datasets/b.npz", "datasets/b.npz.sha256",
        ]
        assert backend.list("nothing/") == []
        blobs = [k for k in backend.list() if not is_checksum_key(k)]
        assert blobs == ["caches/c.npz", "datasets/a.npz", "datasets/b.npz"]

    def test_traversal_keys_rejected(self, backend):
        for key in ("../escape", "a/../../b", "/absolute", "", "a\\b"):
            with pytest.raises((ValueError, KeyError)):
                backend.write(key, b"x")


class TestResolver:
    def test_known_schemes(self):
        assert set(backend_schemes()) == {"file", "memory", "http", "https"}

    def test_file_url_round_trip(self, tmp_path):
        backend = LocalBackend(tmp_path)
        backend.write("datasets/a.npz", b"alpha")
        reopened = resolve_backend(backend.locator)
        assert isinstance(reopened, LocalBackend)
        assert reopened.read("datasets/a.npz") == b"alpha"

    def test_file_url_requires_local_path(self):
        with pytest.raises(ValueError):
            resolve_backend("file://remote-host/share")
        with pytest.raises(ValueError):
            resolve_backend("file://")

    def test_memory_urls(self):
        anonymous = resolve_backend("memory://")
        assert anonymous.locator is None
        assert resolve_backend("memory://") is not anonymous
        named = resolve_backend("memory://shared-test-store")
        named.write("datasets/a.npz", b"alpha")
        again = resolve_backend("memory://shared-test-store")
        assert again is named
        # Even a named memory store is process-local, so it must never
        # advertise a locator (a subprocess resolving the same URL gets
        # an empty store, not this one).
        assert again.locator is None

    def test_http_url(self, object_server):
        backend = resolve_backend(object_server.url)
        assert isinstance(backend, ObjectStoreBackend)
        assert backend.locator == object_server.url

    def test_unknown_scheme_and_missing_scheme(self):
        with pytest.raises(ValueError, match="unknown store URL scheme"):
            resolve_backend("s3://bucket/prefix")
        with pytest.raises(ValueError, match="no scheme"):
            resolve_backend("just-a-directory")

    def test_dataset_store_accepts_backends_and_urls(self, tmp_path):
        assert isinstance(DatasetStore(tmp_path).backend, LocalBackend)
        assert isinstance(DatasetStore(str(tmp_path)).backend, LocalBackend)
        assert isinstance(DatasetStore("memory://").backend, MemoryBackend)
        backend = MemoryBackend()
        assert DatasetStore(backend).backend is backend


class TestDatasetStoreOnBackends:
    def test_memory_store_round_trip(self):
        store = DatasetStore("memory://")
        generated = store.get(SPEC)
        loaded = store.get(SPEC)
        assert (store.misses, store.hits) == (1, 1)
        np.testing.assert_array_equal(generated.X, loaded.X)
        assert loaded.configs == generated.configs

    def test_http_store_round_trip_and_locator(self, object_server):
        store = DatasetStore(object_server.url)
        generated = store.get(SPEC)
        assert store.locator == object_server.url
        again = DatasetStore(object_server.url)
        loaded = again.get(SPEC)
        assert (again.misses, again.hits) == (0, 1)
        np.testing.assert_array_equal(generated.X, loaded.X)
        assert object_server.stats["puts"] >= 1
        assert object_server.stats["gets"] >= 1

    def test_analytical_cache_round_trip_on_memory(self):
        from repro.analytical import AnalyticalPredictionCache
        from repro.experiments.plan import build_analytical

        store = DatasetStore("memory://")
        dataset = store.get(SPEC)
        model = build_analytical("stencil")
        assert store.load_analytical_cache(
            "stencil", SPEC, model, dataset.feature_names) is None
        cache = AnalyticalPredictionCache(model, dataset.feature_names).warm(dataset.X)
        store.save_analytical_cache("stencil", SPEC, cache)
        reloaded = store.load_analytical_cache(
            "stencil", SPEC, model, dataset.feature_names)
        assert (store.cache_misses, store.cache_hits) == (1, 1)
        np.testing.assert_array_equal(
            reloaded.predict(dataset.X), cache.predict(dataset.X))

    def test_prune_is_backend_independent(self):
        store = DatasetStore("memory://")
        store.get(SPEC)
        store.get(OTHER)
        removed = store.prune(keep_fingerprints={SPEC.fingerprint})
        assert [p.name for p in removed] == [store.dataset_path(OTHER).name]
        assert store.has_dataset(SPEC)
        assert not store.has_dataset(OTHER)

    def test_scheduler_runs_on_memory_store(self):
        from repro.experiments import ExperimentSettings, run_experiment

        tiny = ExperimentSettings(n_estimators=4, n_repeats=2, max_configs=120)
        serial = run_experiment("figure6", tiny)
        store = DatasetStore("memory://")
        stored = run_experiment("figure6", tiny, store=store)
        assert stored.rows() == serial.rows()
        assert (store.misses, store.cache_misses) == (1, 1)
        warm = run_experiment("figure6", tiny, store=store)
        assert warm.rows() == serial.rows()
        assert store.hits >= 1 and store.cache_hits >= 1

    def test_process_executor_loads_through_http_locator(self, object_server):
        """Process-pool workers open the parent's http:// store directly."""
        from repro.experiments import ExperimentSettings, run_experiment

        tiny = ExperimentSettings(n_estimators=4, n_repeats=2, max_configs=120)
        serial = run_experiment("figure6", tiny)
        store = DatasetStore(object_server.url)
        parallel = run_experiment("figure6", tiny, store=store,
                                  executor="process", jobs=2)
        assert parallel.rows() == serial.rows()
        # Parent resolve + at least one subprocess each hit the server.
        assert object_server.stats["gets"] + object_server.stats["puts"] >= 2


class TestAtomicWriteRegressions:
    def test_failed_write_does_not_leak_tmp_file(self, tmp_path, monkeypatch):
        """Regression: an exception between tmp-write and rename used to
        leave the half-written ``.tmp.npz`` file behind."""
        from pathlib import Path

        backend = LocalBackend(tmp_path)

        def explode(self, target):
            raise OSError("simulated rename failure")

        monkeypatch.setattr(Path, "replace", explode)
        with pytest.raises(OSError, match="simulated rename failure"):
            backend.write("datasets/a.npz", b"alpha")
        monkeypatch.undo()
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert leftovers == []
        assert not backend.exists("datasets/a.npz")

    def test_prune_collects_orphaned_tmp_files(self, tmp_path):
        """Regression: a writer killed between write and rename leaves a
        ``*.tmp.npz`` orphan; prune must collect it even when every real
        artifact is kept."""
        store = DatasetStore(tmp_path)
        store.get(SPEC)
        orphan = (tmp_path / "datasets" /
                  f"{SPEC.name}-{SPEC.fingerprint}.npz.12345.tmp.npz")
        orphan.write_bytes(b"half-written")
        removed = store.prune(keep_fingerprints={SPEC.fingerprint})
        assert removed == [orphan]
        assert not orphan.exists()
        assert store.has_dataset(SPEC)

    def test_prune_collects_orphaned_checksum_sidecars(self, tmp_path):
        """Regression: a blob deleted out-of-band (or written by a
        pre-checksum store and pruned by it) can leave a ``.sha256``
        sidecar with no blob; prune must collect the orphan even when its
        fingerprint is kept, and must keep live sidecars with their
        blobs."""
        store = DatasetStore(tmp_path)
        store.get(SPEC)
        backend = store.backend
        blob_key = DatasetStore.dataset_key(SPEC)
        sidecar = checksum_key(blob_key)
        assert backend.exists(sidecar)
        # Orphan it: remove the blob only (raw delete bypasses the
        # template method that would also remove the sidecar).
        backend._delete(blob_key)
        assert backend.exists(sidecar)
        removed = store.prune(keep_fingerprints={SPEC.fingerprint})
        assert [p.name for p in removed] == [f"{blob_key.rsplit('/')[-1]}.sha256"]
        assert not backend.exists(sidecar)
        # Live blob + sidecar pairs are pruned (and kept) together; the
        # sidecar riding with its blob is not listed separately.
        store.get(SPEC)
        store.get(OTHER)
        removed = store.prune(keep_fingerprints={SPEC.fingerprint})
        assert [p.name for p in removed] == [
            f"{OTHER.name}-{OTHER.fingerprint}.npz"]
        other_key = DatasetStore.dataset_key(OTHER)
        assert not backend.exists(other_key)
        assert not backend.exists(checksum_key(other_key))
        assert store.has_dataset(SPEC)
        assert backend.exists(checksum_key(blob_key))

    def test_prune_knows_the_models_family(self, tmp_path):
        """Regression: ``prune`` only walked ``datasets/`` and ``caches/``,
        so published ``models/`` blobs (and their sidecars) from retired
        plans were never collected — and, conversely, a keep set without
        the plan fingerprint silently deleted just-published models."""
        store = DatasetStore(tmp_path)
        store.put_model_bytes("feedc0de12345678", "hybrid", b"live-model")
        store.put_model_bytes("0dd0dd0dd0dd0dd0", "hybrid", b"stale-model")
        removed = store.prune(keep_fingerprints={"feedc0de12345678"})
        assert sorted(p.name for p in removed) == [
            "hybrid-0dd0dd0dd0dd0dd0.npz"]
        assert store.has_model("feedc0de12345678", "hybrid")
        assert not store.has_model("0dd0dd0dd0dd0dd0", "hybrid")
        stale_key = DatasetStore.model_key("0dd0dd0dd0dd0dd0", "hybrid")
        assert not store.backend.exists(checksum_key(stale_key))
        live_key = DatasetStore.model_key("feedc0de12345678", "hybrid")
        assert store.backend.exists(checksum_key(live_key))
        assert store.model_bytes("feedc0de12345678", "hybrid") == b"live-model"


class TestChecksums:
    """The integrity layer: sidecars on write, verification on read."""

    def test_write_records_a_sha256_sidecar(self, backend):
        backend.write("datasets/a.npz", b"alpha")
        sidecar = backend.read(checksum_key("datasets/a.npz"))
        assert sidecar.decode("ascii") == sha256_hex(b"alpha")

    def test_corrupt_blob_is_rejected_on_read(self, backend):
        from repro.datasets.backends import IntegrityError

        backend.write("datasets/a.npz", b"alpha")
        # Corrupt below the checksum layer, as bit rot would.
        backend._write("datasets/a.npz", b"alphX")
        with pytest.raises(IntegrityError, match="datasets/a.npz"):
            backend.read("datasets/a.npz")

    def test_legacy_blob_without_sidecar_reads_unverified(self, backend):
        backend._write("datasets/legacy.npz", b"old")
        assert backend.read("datasets/legacy.npz") == b"old"

    def test_delete_removes_the_sidecar_too(self, backend):
        backend.write("datasets/a.npz", b"alpha")
        backend.delete("datasets/a.npz")
        assert not backend.exists("datasets/a.npz")
        assert not backend.exists(checksum_key("datasets/a.npz"))

    def test_store_rejects_and_regenerates_corrupt_dataset(self, tmp_path):
        store = DatasetStore(tmp_path)
        dataset = store.get(SPEC)
        blob_key = DatasetStore.dataset_key(SPEC)
        good = store.backend._read(blob_key)
        store.backend._write(blob_key, good[:-1] + bytes([good[-1] ^ 1]))
        refetched = store.get(SPEC)  # detected, discarded, regenerated
        assert store.integrity_failures == 1
        assert store.backend._read(blob_key) == good  # byte-identical rebuild
        np.testing.assert_array_equal(refetched.X, dataset.X)
        np.testing.assert_array_equal(refetched.y, dataset.y)


class TestObjectServer:
    def test_get_missing_is_404(self, object_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(object_server.url + "datasets/nope.npz")
        assert excinfo.value.code == 404

    def test_list_endpoint_returns_json(self, object_server):
        backend = ObjectStoreBackend(object_server.url)
        backend.write("datasets/a.npz", b"1")
        backend.write("caches/b.npz", b"2")
        with urllib.request.urlopen(object_server.url + "?prefix=datasets/") as resp:
            assert json.loads(resp.read()) == [
                "datasets/a.npz", "datasets/a.npz.sha256"]

    def test_traversal_is_rejected_with_400(self, object_server):
        request = urllib.request.Request(
            object_server.url + "..%2f..%2fescape", data=b"x", method="PUT")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_head_existence_probe(self, object_server):
        backend = ObjectStoreBackend(object_server.url)
        assert not backend.exists("datasets/a.npz")
        backend.write("datasets/a.npz", b"1")
        assert backend.exists("datasets/a.npz")
        assert object_server.stats["heads"] == 1  # the 404 probe is not counted

    def test_server_over_local_backend_persists(self, tmp_path):
        with ObjectStoreServer(LocalBackend(tmp_path)) as server:
            client = ObjectStoreBackend(server.url)
            client.write("datasets/a.npz", b"alpha")
        assert (tmp_path / "datasets" / "a.npz").read_bytes() == b"alpha"


class TestCommandLine:
    def test_store_url_flag_memory(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure6", "--quick", "--store-url", "memory://",
                     "--store-prune"]) == 0
        out = capsys.readouterr().out
        assert "figure6" in out and "store prune" in out

    def test_store_url_flag_http(self, object_server, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure6", "--quick", "--executor", "thread", "--jobs", "2",
                     "--store-url", object_server.url]) == 0
        assert "figure6" in capsys.readouterr().out
        assert object_server.stats["puts"] >= 2  # dataset + warmed cache

    def test_store_url_and_store_dir_conflict(self, tmp_path):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure6", "--quick", "--store-dir", str(tmp_path),
                  "--store-url", "memory://"])

    def test_bad_store_url_is_a_usage_error(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure6", "--quick", "--store-url", "s3://bucket"])

    def test_store_url_requires_a_scheme(self, tmp_path):
        """A bare path given to --store-url must be a usage error, not a
        silently-created local directory named after the 'URL'."""
        from repro.distributed.worker import main as worker_main
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure6", "--quick", "--store-url", str(tmp_path)])
        with pytest.raises(SystemExit):
            worker_main(["--connect", "127.0.0.1:1", "--store-url", "no-scheme"])
