"""Tests for repro.analytical.communication."""

import pytest

from repro.analytical.communication import (
    AlphaBetaNetwork,
    fmm_communication_time,
    stencil_halo_exchange_time,
)


class TestAlphaBetaNetwork:
    def test_message_time_components(self):
        net = AlphaBetaNetwork(latency_s=1e-6, bandwidth_bytes_per_s=1e9, word_bytes=8)
        assert net.message_time(0) == pytest.approx(1e-6)
        assert net.message_time(1000) == pytest.approx(1e-6 + 8000 / 1e9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AlphaBetaNetwork(latency_s=-1.0)
        with pytest.raises(ValueError):
            AlphaBetaNetwork(bandwidth_bytes_per_s=0.0)
        with pytest.raises(ValueError):
            AlphaBetaNetwork().message_time(-1)


class TestStencilHaloExchange:
    def test_single_rank_is_free(self):
        assert stencil_halo_exchange_time((256, 256, 256), 1) == 0.0

    def test_more_ranks_smaller_messages_but_more_directions(self):
        shape = (512, 512, 512)
        t2 = stencil_halo_exchange_time(shape, 2)
        t64 = stencil_halo_exchange_time(shape, 64)
        assert t2 > 0 and t64 > 0
        # With 64 ranks every face shrinks by 16x but all 3 directions
        # communicate, so time per rank drops but not by the full factor.
        assert t64 < t2
        assert t64 > t2 / 16.0

    def test_timesteps_scale_linearly(self):
        shape = (128, 128, 128)
        t1 = stencil_halo_exchange_time(shape, 8, timesteps=1)
        t5 = stencil_halo_exchange_time(shape, 8, timesteps=5)
        assert t5 == pytest.approx(5 * t1)

    def test_higher_order_larger_halo(self):
        shape = (128, 128, 128)
        assert stencil_halo_exchange_time(shape, 8, order=2) > \
            stencil_halo_exchange_time(shape, 8, order=1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            stencil_halo_exchange_time((8, 8, 8), 0)
        with pytest.raises(ValueError):
            stencil_halo_exchange_time((8, 8, 8), 4, timesteps=0)


class TestFmmCommunication:
    def test_single_rank_is_free(self):
        assert fmm_communication_time(100_000, 1) == 0.0

    def test_positive_and_grows_with_order(self):
        low = fmm_communication_time(1_000_000, 64, order=2)
        high = fmm_communication_time(1_000_000, 64, order=10)
        assert 0 < low < high

    def test_weak_scaling_per_rank_volume_shrinks(self):
        # Fixed total N: each rank holds less, so its ghost volume shrinks.
        few = fmm_communication_time(1_000_000, 8)
        many = fmm_communication_time(1_000_000, 512)
        assert many < few

    def test_invalid(self):
        with pytest.raises(ValueError):
            fmm_communication_time(0, 4)
        with pytest.raises(ValueError):
            fmm_communication_time(1000, 4, order=0)
