"""Tests for repro.fmm.particles."""

import numpy as np
import pytest

from repro.fmm.particles import ParticleSet, plummer, random_cube, random_sphere


class TestParticleSet:
    def test_construction_and_properties(self):
        pos = np.zeros((5, 3))
        w = np.ones(5)
        p = ParticleSet(pos, w)
        assert p.n == 5
        assert p.total_weight() == pytest.approx(5.0)

    def test_bounding_cube_contains_all_points(self):
        rng = np.random.default_rng(0)
        p = ParticleSet(rng.uniform(-3, 7, (100, 3)), np.ones(100))
        center, radius = p.bounding_cube()
        assert np.all(np.abs(p.positions - center) <= radius + 1e-12)

    def test_subset(self):
        p = random_cube(20, random_state=0)
        sub = p.subset(np.array([0, 5, 7]))
        assert sub.n == 3
        np.testing.assert_array_equal(sub.positions[1], p.positions[5])

    @pytest.mark.parametrize("pos,w", [
        (np.zeros((3, 2)), np.ones(3)),       # wrong dimensionality
        (np.zeros((3, 3)), np.ones(4)),       # weight length mismatch
        (np.zeros((0, 3)), np.zeros(0)),      # empty
        (np.full((2, 3), np.nan), np.ones(2)),  # NaN
    ])
    def test_invalid(self, pos, w):
        with pytest.raises(ValueError):
            ParticleSet(pos, w)


class TestDistributions:
    def test_random_cube_bounds_and_determinism(self):
        p = random_cube(500, side=2.0, random_state=3)
        assert p.n == 500
        assert np.all(np.abs(p.positions) <= 1.0)
        q = random_cube(500, side=2.0, random_state=3)
        np.testing.assert_array_equal(p.positions, q.positions)

    def test_random_cube_uniform_weights_sum_to_one(self):
        p = random_cube(100, random_state=0, weights="uniform")
        assert p.total_weight() == pytest.approx(1.0)

    def test_random_cube_random_weights(self):
        p = random_cube(100, random_state=0, weights="random")
        assert np.all((p.weights >= 0) & (p.weights <= 1))
        assert len(np.unique(p.weights)) > 10

    def test_random_sphere_within_radius(self):
        p = random_sphere(300, radius=0.7, random_state=1)
        assert np.all(np.linalg.norm(p.positions, axis=1) <= 0.7 + 1e-12)

    def test_plummer_is_centrally_concentrated(self):
        p = plummer(1000, scale=0.1, random_state=2)
        radii = np.linalg.norm(p.positions, axis=1)
        assert np.median(radii) < 0.3
        assert p.n == 1000

    def test_invalid_sizes_and_weights(self):
        with pytest.raises(ValueError):
            random_cube(0)
        with pytest.raises(ValueError):
            random_cube(10, weights="gaussian")
