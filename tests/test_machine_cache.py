"""Tests for repro.machine.cache."""

import pytest

from repro.machine.cache import CacheHierarchy, CacheLevel, MemoryLevel


def _level(name="L1", size=32 * 1024, line=64, bw=1e11, **kwargs):
    return CacheLevel(name=name, size_bytes=size, line_bytes=line,
                      bandwidth_bytes_per_s=bw, **kwargs)


class TestCacheLevel:
    def test_basic_properties(self):
        lvl = _level()
        assert lvl.size_elements(8) == 4096
        assert lvl.line_elements(8) == 8
        assert lvl.beta(8) == pytest.approx(8 / 1e11)

    def test_word_size_4(self):
        lvl = _level()
        assert lvl.size_elements(4) == 8192
        assert lvl.line_elements(4) == 16

    @pytest.mark.parametrize("kwargs", [
        dict(size=0), dict(line=0), dict(bw=0.0), dict(shared_by=0),
    ])
    def test_invalid_parameters(self, kwargs):
        mapping = {"size": "size_bytes", "line": "line_bytes", "bw": "bandwidth_bytes_per_s",
                   "shared_by": "shared_by"}
        full = dict(name="L1", size_bytes=1024, line_bytes=64,
                    bandwidth_bytes_per_s=1e9, shared_by=1)
        for short, value in kwargs.items():
            full[mapping[short]] = value
        with pytest.raises(ValueError):
            CacheLevel(**full)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            _level(latency_s=-1e-9)


class TestMemoryLevel:
    def test_beta(self):
        mem = MemoryLevel(size_bytes=2**30, bandwidth_bytes_per_s=1e10)
        assert mem.beta(8) == pytest.approx(8e-10)

    def test_invalid(self):
        with pytest.raises(ValueError):
            MemoryLevel(size_bytes=0, bandwidth_bytes_per_s=1e10)
        with pytest.raises(ValueError):
            MemoryLevel(size_bytes=2**30, bandwidth_bytes_per_s=0.0)


class TestCacheHierarchy:
    def _hierarchy(self):
        return CacheHierarchy(
            levels=(
                _level("L1", size=32 * 1024, bw=1.5e11),
                _level("L2", size=1024 * 1024, bw=8e10),
                _level("L3", size=8 * 1024 * 1024, bw=4e10),
            ),
            memory=MemoryLevel(size_bytes=2**34, bandwidth_bytes_per_s=1e11),
        )

    def test_levels_and_lookup(self):
        h = self._hierarchy()
        assert h.n_levels == 3
        assert h.line_bytes == 64
        assert h.last_level.name == "L3"
        assert h.level("l2").size_bytes == 1024 * 1024
        with pytest.raises(KeyError):
            h.level("L4")

    def test_requires_increasing_sizes(self):
        with pytest.raises(ValueError, match="ordered"):
            CacheHierarchy(
                levels=(_level("L1", size=2**20), _level("L2", size=2**15)),
                memory=MemoryLevel(2**30, 1e10),
            )

    def test_requires_common_line_size(self):
        with pytest.raises(ValueError, match="line size"):
            CacheHierarchy(
                levels=(_level("L1", size=2**15, line=64), _level("L2", size=2**20, line=128)),
                memory=MemoryLevel(2**30, 1e10),
            )

    def test_requires_at_least_one_level(self):
        with pytest.raises(ValueError):
            CacheHierarchy(levels=(), memory=MemoryLevel(2**30, 1e10))

    def test_scaled(self):
        h = self._hierarchy()
        smaller = h.scaled(0.5)
        assert smaller.levels[0].size_bytes == 16 * 1024
        assert smaller.levels[2].size_bytes == 4 * 1024 * 1024
        with pytest.raises(ValueError):
            h.scaled(0.0)

    def test_scaled_never_below_line_size(self):
        h = self._hierarchy()
        tiny = h.scaled(1e-9)
        assert all(lvl.size_bytes >= lvl.line_bytes for lvl in tiny.levels)
