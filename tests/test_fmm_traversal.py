"""Tests for repro.fmm.traversal."""

import numpy as np
import pytest

from repro.fmm.octree import Octree
from repro.fmm.particles import plummer, random_cube
from repro.fmm.traversal import Interactions, build_interaction_lists, dual_tree_traversal


def _coverage_counts(octree, interactions):
    """Count how many times each (target particle, source particle) pair is covered.

    A pair is covered once by a P2P leaf pair containing it, or once by an
    M2L pair of ancestor cells.  Every pair must be covered exactly once
    for the FMM to be exact.
    """
    n = octree.particles.n
    cover = np.zeros((n, n), dtype=np.int64)
    cells = octree.cells
    for t, s in interactions.p2p_pairs:
        cover[np.ix_(cells[t].particle_indices, cells[s].particle_indices)] += 1
    for t, s in interactions.m2l_pairs:
        cover[np.ix_(cells[t].particle_indices, cells[s].particle_indices)] += 1
    return cover


@pytest.mark.parametrize("builder,kwargs", [
    (dual_tree_traversal, {"theta": 0.6}),
    (dual_tree_traversal, {"theta": 0.9}),
    (build_interaction_lists, {}),
])
class TestExactCoverage:
    def test_uniform_cube_coverage(self, builder, kwargs):
        particles = random_cube(300, random_state=0)
        tree = Octree(particles, max_per_leaf=16)
        cover = _coverage_counts(tree, builder(tree, **kwargs))
        assert np.all(cover == 1)

    def test_clustered_coverage(self, builder, kwargs):
        particles = plummer(200, random_state=1)
        tree = Octree(particles, max_per_leaf=8)
        cover = _coverage_counts(tree, builder(tree, **kwargs))
        assert np.all(cover == 1)


class TestDualTreeTraversal:
    def test_single_cell_tree_is_all_p2p(self):
        particles = random_cube(20, random_state=2)
        tree = Octree(particles, max_per_leaf=64)
        inter = dual_tree_traversal(tree)
        assert inter.n_m2l == 0
        assert inter.p2p_pairs == [(0, 0)]

    def test_smaller_theta_means_more_direct_work(self):
        particles = random_cube(600, random_state=3)
        tree = Octree(particles, max_per_leaf=16)
        loose = dual_tree_traversal(tree, theta=0.9)
        tight = dual_tree_traversal(tree, theta=0.3)
        assert tight.n_p2p > loose.n_p2p

    def test_invalid_theta(self):
        particles = random_cube(20, random_state=4)
        tree = Octree(particles, max_per_leaf=8)
        with pytest.raises(ValueError):
            dual_tree_traversal(tree, theta=0.0)
        with pytest.raises(ValueError):
            dual_tree_traversal(tree, theta=1.5)


class TestInteractionListStatistics:
    def test_interior_list_sizes_approach_paper_constants(self):
        # For a dense uniform distribution the average near-field list size
        # approaches 26 (paper's b_P2P) and the well-separated list 189
        # (b_M2L); boundary cells pull the averages down.
        particles = random_cube(4096, random_state=5)
        tree = Octree(particles, max_per_leaf=8)
        inter = build_interaction_lists(tree)
        avg_p2p = inter.average_p2p_neighbors(tree)
        avg_m2l = inter.average_m2l_sources()
        assert 7.0 < avg_p2p <= 26.0
        assert 25.0 < avg_m2l <= 189.0

    def test_interactions_container_counters(self):
        inter = Interactions(p2p_pairs=[(0, 0), (0, 1)], m2l_pairs=[(0, 2)])
        assert inter.n_p2p == 2
        assert inter.n_m2l == 1

    def test_empty_interactions_averages(self):
        particles = random_cube(10, random_state=6)
        tree = Octree(particles, max_per_leaf=64)
        inter = Interactions()
        assert inter.average_p2p_neighbors(tree) == 0.0
        assert inter.average_m2l_sources() == 0.0
