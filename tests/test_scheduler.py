"""Tests for the plan/scheduler/store execution architecture.

The key guarantees:

* every experiment plan expands into picklable cells whose seeds are
  derived at planning time, so the serial, thread and process executors
  produce **bit-identical** ``ExperimentResult`` rows;
* a persistent :class:`DatasetStore` lets a second invocation skip both
  dataset generation and the analytical warm-up (verified through the
  store's hit counters).
"""

import pickle

import numpy as np
import pytest

from repro.core.evaluation import EvalCell
from repro.datasets import DatasetSpec, DatasetStore
from repro.experiments import (
    EXPERIMENTS,
    PLANNED_EXPERIMENTS,
    ExperimentSettings,
    expand_cells,
    experiment_plan,
    run_all,
    run_experiment,
)
from repro.experiments.plan import build_analytical, build_factory
from repro.utils.rng import check_random_state, spawn_seeds

TINY = ExperimentSettings(n_estimators=4, n_repeats=2, max_configs=120, random_state=0)

#: A subset covering both applications, hybrid + pure-ML series, degraded
#: analytical models and dataset sharing across experiments.
SUBSET = ("figure5", "figure6", "figure8", "ablation_analytical_quality")


def _all_rows(results):
    return {name: (result.rows(), result.extra) for name, result in results.items()}


class TestPlans:
    def test_every_planned_experiment_has_a_plan(self):
        for name in PLANNED_EXPERIMENTS:
            plan = experiment_plan(name, TINY)
            assert plan is not None and plan.name == name
            assert plan.series and plan.n_repeats == TINY.n_repeats

    def test_opaque_experiments_have_no_plan(self):
        assert experiment_plan("analytical_accuracy", TINY) is None
        assert experiment_plan("ablation_sampling_strategy", TINY) is None
        assert set(PLANNED_EXPERIMENTS) | {"analytical_accuracy",
                                           "ablation_sampling_strategy"} == set(EXPERIMENTS)

    def test_plans_and_cells_are_picklable_and_hashable(self):
        plan = experiment_plan("figure6", TINY)
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))
        cells = expand_cells(plan)
        assert all(isinstance(c, EvalCell) for c in cells)
        assert pickle.loads(pickle.dumps(cells)) == cells

    def test_expansion_matches_grid(self):
        plan = experiment_plan("figure5", TINY)
        cells = expand_cells(plan)
        expected = sum(len(s.fractions) * plan.n_repeats for s in plan.series)
        assert len(cells) == expected
        # Every cell carries the dataset fingerprint of the plan.
        assert {c.dataset_fingerprint for c in cells} == {plan.dataset.fingerprint}

    def test_cell_seeds_reproduce_the_serial_stream(self):
        """Planning draws seeds exactly as the serial per-curve loop did."""
        plan = experiment_plan("figure6", TINY)
        for spec in plan.series:
            rng = check_random_state(plan.random_state)
            expected = []
            for _ in spec.fractions:
                expected.extend(spawn_seeds(rng, plan.n_repeats))
            got = [c.seed for c in expand_cells(plan) if c.series == spec.label]
            assert got == expected

    def test_unknown_registry_entries_raise(self):
        with pytest.raises(KeyError):
            build_analytical("nope")
        plan = experiment_plan("figure6", TINY)
        dataset = plan.dataset.build()
        hybrid = plan.series[1].factory
        bad = type(hybrid)(kind="nope", estimator=hybrid.estimator)
        with pytest.raises(KeyError):
            build_factory(bad, dataset)


class TestExecutorDeterminism:
    @pytest.fixture(scope="class")
    def serial_results(self):
        return run_all(TINY)

    def test_thread_executor_bit_identical(self, serial_results):
        threaded = run_all(TINY, SUBSET, executor="thread", jobs=4)
        serial = {name: serial_results[name] for name in SUBSET}
        assert _all_rows(threaded) == _all_rows(serial)

    def test_process_executor_bit_identical(self, serial_results):
        """The acceptance criterion: process rows == serial rows, bit for bit."""
        processed = run_all(TINY, executor="process", jobs=4)
        assert _all_rows(processed) == _all_rows(serial_results)

    def test_run_experiment_executor_validation(self):
        with pytest.raises(ValueError):
            run_experiment("figure6", TINY, executor="rocket")
        with pytest.raises(ValueError):
            run_experiment("figure6", TINY, executor="thread", jobs=0)

    def test_dataset_override_with_executors(self, serial_results):
        """Explicit datasets (the test/notebook path) work on every executor."""
        from repro.experiments.figures import figure6

        plan = experiment_plan("figure6", TINY)
        dataset = plan.dataset.build()
        serial = figure6(TINY, dataset)
        assert serial.rows() == serial_results["figure6"].rows()
        threaded = figure6(TINY, dataset, executor="thread", jobs=2)
        processed = figure6(TINY, dataset, executor="process", jobs=2)
        assert threaded.rows() == serial.rows()
        assert processed.rows() == serial.rows()


class TestDatasetStore:
    def test_round_trip_is_bit_identical(self, tmp_path):
        spec = DatasetSpec("stencil-blocked", max_configs=80, random_state=0)
        store = DatasetStore(tmp_path)
        generated = store.get(spec)
        loaded = store.get(spec)
        assert (store.misses, store.hits) == (1, 1)
        np.testing.assert_array_equal(generated.X, loaded.X)
        np.testing.assert_array_equal(generated.y, loaded.y)
        assert generated.feature_names == loaded.feature_names
        assert generated.name == loaded.name
        assert loaded.configs == generated.configs

    def test_fingerprint_distinguishes_specs(self):
        base = DatasetSpec("fmm", max_configs=100, random_state=0)
        assert base.fingerprint == DatasetSpec("fmm", max_configs=100).fingerprint
        assert base.fingerprint != DatasetSpec("fmm", max_configs=101).fingerprint
        assert base.fingerprint != DatasetSpec("fmm", max_configs=100,
                                               random_state=1).fingerprint
        assert base.fingerprint != DatasetSpec("stencil-blocked",
                                               max_configs=100).fingerprint

    def test_analytical_cache_round_trip(self, tmp_path):
        from repro.analytical import AnalyticalPredictionCache

        spec = DatasetSpec("stencil-blocked", max_configs=60, random_state=0)
        store = DatasetStore(tmp_path)
        dataset = store.get(spec)
        model = build_analytical("stencil")
        assert store.load_analytical_cache("stencil", spec, model,
                                           dataset.feature_names) is None
        cache = AnalyticalPredictionCache(model, dataset.feature_names).warm(dataset.X)
        store.save_analytical_cache("stencil", spec, cache)
        reloaded = store.load_analytical_cache("stencil", spec, model,
                                               dataset.feature_names)
        assert (store.cache_misses, store.cache_hits) == (1, 1)
        assert len(reloaded) == len(cache) == dataset.n_samples
        predictions = reloaded.predict(dataset.X)
        # Second load serves every row from disk-backed memory: zero misses.
        assert reloaded.misses == 0 and reloaded.hits == dataset.n_samples
        np.testing.assert_array_equal(predictions, cache.predict(dataset.X))

    def test_warm_store_skips_generation_and_warmup(self, tmp_path):
        """Acceptance: a second invocation with a warm store hits disk only."""
        cold = DatasetStore(tmp_path)
        first = run_all(TINY, SUBSET, store=cold)
        assert cold.misses > 0 and cold.cache_misses > 0
        warm = DatasetStore(tmp_path)
        second = run_all(TINY, SUBSET, store=warm, executor="process", jobs=2)
        assert warm.misses == 0 and warm.cache_misses == 0
        assert warm.hits > 0 and warm.cache_hits > 0
        assert _all_rows(second) == _all_rows(first)

    def test_store_shares_datasets_across_experiments(self, tmp_path):
        store = DatasetStore(tmp_path)
        run_all(TINY, ("figure6", "ablation_aggregation"), store=store)
        # Both experiments use the blocked-stencil dataset and the stencil
        # analytical model: one generation, one warm-up, then pure hits.
        assert store.misses == 1 and store.hits == 1
        assert store.cache_misses == 1 and store.cache_hits == 1

    def test_run_accepts_store_path(self, tmp_path):
        result = run_experiment("figure6", TINY, store=str(tmp_path))
        assert (tmp_path / "datasets").exists()
        assert result.curves["hybrid"].points

    def test_simulator_version_invalidates_fingerprint(self, tmp_path, monkeypatch):
        """Bumping a SIMULATOR_VERSION must miss every stored entry of that
        simulator's datasets (the recipe fingerprint covers the simulators)."""
        import repro.datasets.store as store_mod
        import repro.stencil.perf_sim as stencil_sim

        spec = DatasetSpec("stencil-blocked", max_configs=60, random_state=0)
        store = DatasetStore(tmp_path)
        store.get(spec)
        old_fingerprint = spec.fingerprint
        assert store_mod._FORMAT_VERSION == 2  # v2 added the simulator token
        monkeypatch.setattr(stencil_sim, "SIMULATOR_VERSION",
                            stencil_sim.SIMULATOR_VERSION + 1)
        assert spec.fingerprint != old_fingerprint
        fresh = DatasetStore(tmp_path)
        fresh.get(spec)
        assert (fresh.misses, fresh.hits) == (1, 0)

    def test_format_version_bump_invalidates_fingerprint(self, monkeypatch):
        import repro.datasets.store as store_mod

        spec = DatasetSpec("fmm", max_configs=50)
        old_fingerprint = spec.fingerprint
        monkeypatch.setattr(store_mod, "_FORMAT_VERSION",
                            store_mod._FORMAT_VERSION + 1)
        assert spec.fingerprint != old_fingerprint

    def test_prune_keeps_live_fingerprints_loadable(self, tmp_path):
        from repro.analytical import AnalyticalPredictionCache

        live = DatasetSpec("stencil-blocked", max_configs=60, random_state=0)
        stale = DatasetSpec("stencil-blocked", max_configs=40, random_state=0)
        store = DatasetStore(tmp_path)
        for spec in (live, stale):
            dataset = store.get(spec)
            cache = AnalyticalPredictionCache(
                build_analytical("stencil"), dataset.feature_names).warm(dataset.X)
            store.save_analytical_cache("stencil", spec, cache)

        removed = store.prune(keep_fingerprints={live.fingerprint})
        assert sorted(p.name for p in removed) == sorted([
            store.dataset_path(stale).name, store.cache_path("stencil", stale).name])
        assert not store.dataset_path(stale).exists()

        warm = DatasetStore(tmp_path)
        dataset = warm.get(live)
        assert (warm.misses, warm.hits) == (0, 1)
        assert warm.load_analytical_cache(
            "stencil", live, build_analytical("stencil"),
            dataset.feature_names) is not None
        warm.get(stale)
        assert warm.misses == 1  # the pruned entry is really gone


class TestCommandLine:
    def test_cli_parallel_store_run(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        args = ["figure6", "--quick", "--executor", "thread", "--jobs", "2",
                "--store-dir", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "figure6" in out and "hybrid" in out
        assert (tmp_path / "datasets").exists() and (tmp_path / "caches").exists()

    def test_cli_process_sequence_with_batch_cells(self, tmp_path, capsys):
        """`--jobs 2 --batch-cells auto` runs the sequence on one warm
        pool with cost-shaped batches and prints every experiment."""
        from repro.experiments.__main__ import main

        args = ["figure5", "figure6", "--quick", "--jobs", "2",
                "--batch-cells", "auto", "--store-dir", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "figure5" in out and "figure6" in out
