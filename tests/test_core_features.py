"""Tests for repro.core.features (PerformanceDataset)."""

import numpy as np
import pytest

from repro.core.features import PerformanceDataset


def _dataset(n=50, d=3, name="toy"):
    rng = np.random.default_rng(0)
    X = rng.random((n, d))
    y = rng.uniform(0.1, 1.0, n)
    return PerformanceDataset(name=name, X=X, y=y, feature_names=[f"f{i}" for i in range(d)])


class TestConstruction:
    def test_basic_properties(self):
        data = _dataset()
        assert data.n_samples == 50
        assert data.n_features == 3
        assert "toy" in data.describe()

    def test_configs_carried(self):
        data = PerformanceDataset(name="x", X=np.ones((2, 1)), y=np.ones(2),
                                  feature_names=["a"], configs=["c0", "c1"])
        sub = data.subset(np.array([1]))
        assert sub.configs == ["c1"]

    @pytest.mark.parametrize("kwargs", [
        dict(X=np.ones(5), y=np.ones(5), feature_names=["a"]),
        dict(X=np.ones((5, 2)), y=np.ones(4), feature_names=["a", "b"]),
        dict(X=np.ones((5, 2)), y=np.ones(5), feature_names=["a"]),
        dict(X=np.ones((5, 2)), y=np.ones(5), feature_names=["a", "b"], configs=["c"]),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PerformanceDataset(name="bad", **kwargs)


class TestSplitting:
    def test_fraction_split(self):
        data = _dataset(n=100)
        train, test = data.train_test_indices(train_fraction=0.2, random_state=0)
        assert len(train) == 20
        assert len(test) == 80
        assert set(train).isdisjoint(test)
        assert len(set(train) | set(test)) == 100

    def test_size_split(self):
        data = _dataset(n=40)
        train, test = data.train_test_indices(train_size=10, random_state=0)
        assert len(train) == 10 and len(test) == 30

    def test_min_train_enforced(self):
        data = _dataset(n=100)
        train, _ = data.train_test_indices(train_fraction=0.01, min_train=5, random_state=0)
        assert len(train) == 5

    def test_never_empty_test_set(self):
        data = _dataset(n=10)
        train, test = data.train_test_indices(train_size=10, random_state=0)
        assert len(test) >= 1

    def test_deterministic(self):
        data = _dataset(n=60)
        a, _ = data.train_test_indices(train_fraction=0.1, random_state=7)
        b, _ = data.train_test_indices(train_fraction=0.1, random_state=7)
        np.testing.assert_array_equal(a, b)

    def test_exactly_one_size_argument(self):
        data = _dataset()
        with pytest.raises(ValueError):
            data.train_test_indices()
        with pytest.raises(ValueError):
            data.train_test_indices(train_fraction=0.1, train_size=5)

    def test_invalid_fraction(self):
        data = _dataset()
        with pytest.raises(ValueError):
            data.train_test_indices(train_fraction=1.5)

    def test_subset(self):
        data = _dataset(n=20)
        sub = data.subset(np.arange(5))
        assert sub.n_samples == 5
        np.testing.assert_array_equal(sub.X, data.X[:5])
