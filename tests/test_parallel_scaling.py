"""Tests for repro.parallel.scaling."""

import pytest

from repro.parallel.scaling import (
    ThreadScalingModel,
    amdahl_speedup,
    bandwidth_saturation_speedup,
    gustafson_speedup,
)


class TestAmdahl:
    def test_single_thread_is_one(self):
        assert amdahl_speedup(1, 0.1) == pytest.approx(1.0)

    def test_perfectly_parallel(self):
        assert amdahl_speedup(8, 0.0) == pytest.approx(8.0)

    def test_fully_serial(self):
        assert amdahl_speedup(16, 1.0) == pytest.approx(1.0)

    def test_upper_bound(self):
        # Speedup never exceeds 1 / serial_fraction.
        assert amdahl_speedup(10000, 0.1) < 10.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            amdahl_speedup(0, 0.1)
        with pytest.raises(ValueError):
            amdahl_speedup(4, 1.5)


class TestGustafson:
    def test_single_thread(self):
        assert gustafson_speedup(1, 0.3) == pytest.approx(1.0)

    def test_scales_linearly_when_parallel(self):
        assert gustafson_speedup(8, 0.0) == pytest.approx(8.0)

    def test_exceeds_amdahl(self):
        assert gustafson_speedup(16, 0.2) > amdahl_speedup(16, 0.2)


class TestBandwidthSaturation:
    def test_monotone_and_bounded(self):
        speedups = [bandwidth_saturation_speedup(t, 4.0) for t in range(1, 17)]
        assert all(b >= a - 1e-12 for a, b in zip(speedups, speedups[1:], strict=False))
        assert speedups[-1] <= 4.0 + 1e-9

    def test_linear_regime(self):
        # Far below saturation the speedup is close to the thread count.
        assert bandwidth_saturation_speedup(1, 64.0) == pytest.approx(1.0, rel=0.05)
        assert bandwidth_saturation_speedup(2, 64.0) == pytest.approx(2.0, rel=0.05)

    def test_invalid(self):
        with pytest.raises(ValueError):
            bandwidth_saturation_speedup(0, 4.0)
        with pytest.raises(ValueError):
            bandwidth_saturation_speedup(4, 0.0)


class TestThreadScalingModel:
    def test_single_thread_time_preserved_up_to_overhead(self):
        model = ThreadScalingModel(overhead_s=0.0)
        assert model.time(1.0, 1) == pytest.approx(1.0, rel=1e-6)

    def test_time_decreases_then_saturates(self):
        model = ThreadScalingModel(serial_fraction=0.05, saturation_threads=4.0,
                                   compute_fraction=0.3, overhead_s=0.0,
                                   cores_per_socket=8, numa_penalty=1.0)
        times = [model.time(1.0, t) for t in (1, 2, 4, 8)]
        assert times[1] < times[0]
        assert times[2] < times[1]
        # Speedup is bounded well below linear at 8 threads.
        assert times[0] / times[3] < 8.0

    def test_numa_penalty_applies_beyond_socket(self):
        base = ThreadScalingModel(numa_penalty=1.0, cores_per_socket=4, overhead_s=0.0)
        numa = ThreadScalingModel(numa_penalty=1.5, cores_per_socket=4, overhead_s=0.0)
        assert numa.time(1.0, 8) > base.time(1.0, 8)
        assert numa.time(1.0, 4) == pytest.approx(base.time(1.0, 4))

    def test_overhead_grows_with_threads(self):
        model = ThreadScalingModel(overhead_s=1e-3, serial_fraction=0.0,
                                   compute_fraction=1.0, saturation_threads=1e9,
                                   numa_penalty=1.0)
        # Tiny kernel: overhead dominates, so more threads means more time.
        assert model.time(1e-6, 8) > model.time(1e-6, 1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ThreadScalingModel(serial_fraction=1.5)
        with pytest.raises(ValueError):
            ThreadScalingModel(numa_penalty=0.5)
        with pytest.raises(ValueError):
            ThreadScalingModel(saturation_threads=0.0)
        with pytest.raises(ValueError):
            ThreadScalingModel().time(-1.0, 2)
        with pytest.raises(ValueError):
            ThreadScalingModel().speedup(0)
