"""Tests for repro.datasets (generators, sampling, registry)."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_REGISTRY,
    blocked_small_grid_dataset,
    fmm_dataset,
    grid_only_dataset,
    latin_hypercube_indices,
    load_dataset,
    threaded_dataset,
    uniform_sample_indices,
)
from repro.datasets.stencil_datasets import stencil_dataset_from_space
from repro.stencil.config import StencilConfigSpace
from repro.stencil.executor import StencilExecutor


class TestSampling:
    def test_uniform_sample_no_duplicates(self):
        idx = uniform_sample_indices(100, 20, random_state=0)
        assert len(idx) == 20
        assert len(set(idx.tolist())) == 20

    def test_uniform_sample_deterministic(self):
        a = uniform_sample_indices(50, 10, random_state=3)
        b = uniform_sample_indices(50, 10, random_state=3)
        np.testing.assert_array_equal(a, b)

    def test_uniform_sample_invalid(self):
        with pytest.raises(ValueError):
            uniform_sample_indices(10, 0)
        with pytest.raises(ValueError):
            uniform_sample_indices(10, 11)

    def test_latin_hypercube_spreads_over_range(self):
        rng = np.random.default_rng(0)
        X = rng.random((200, 2))
        idx = latin_hypercube_indices(X, 20, random_state=0)
        assert len(idx) == 20
        assert len(set(idx.tolist())) == 20
        # Stratified selection should cover a wide range of the first feature.
        values = np.sort(X[idx, 0])
        assert values[0] < 0.25 and values[-1] > 0.75

    def test_latin_hypercube_invalid(self):
        with pytest.raises(ValueError):
            latin_hypercube_indices(np.ones((5, 2)), 6)


class TestStencilDatasets:
    def test_blocked_dataset_structure(self, small_stencil_dataset):
        data = small_stencil_dataset
        assert data.name == "stencil-blocked"
        assert data.feature_names == ["I", "J", "K", "bi", "bj", "bk"]
        assert data.n_samples == 300
        assert np.all(data.y > 0)
        assert len(data.configs) == data.n_samples

    def test_grid_only_dataset(self):
        data = grid_only_dataset(max_configs=50)
        assert data.feature_names == ["I", "J", "K"]
        assert data.n_samples == 50

    def test_threaded_dataset(self):
        data = threaded_dataset()
        assert data.feature_names == ["I", "J", "K", "threads"]
        assert data.n_samples == 128
        assert data.X[:, 3].max() == 8

    def test_subsample_determinism(self):
        a = blocked_small_grid_dataset(max_configs=100, random_state=5)
        b = blocked_small_grid_dataset(max_configs=100, random_state=5)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_custom_simulator_object(self):
        class ConstantSim:
            def times(self, configs):
                return np.full(len(configs), 0.5)

        data = grid_only_dataset(simulator=ConstantSim(), max_configs=10)
        np.testing.assert_allclose(data.y, 0.5)

    def test_real_executor_as_measurement_source(self):
        # The executor satisfies the same "times(configs)" protocol, so
        # laptop-scale spaces can use real measurements instead of the simulator.
        space = StencilConfigSpace(grid_sizes=[(8, 8, 8), (16, 16, 16)])
        data = stencil_dataset_from_space(
            space, name="real", simulator=StencilExecutor(timesteps=1, repeats=1))
        assert data.n_samples == 2
        assert np.all(data.y > 0)


class TestFmmDataset:
    def test_structure(self, small_fmm_dataset):
        data = small_fmm_dataset
        assert data.name == "fmm"
        assert data.feature_names == ["threads", "n_particles", "particles_per_leaf", "order"]
        assert np.all(data.y > 0)

    def test_full_space_size(self):
        data = fmm_dataset()
        assert data.n_samples == 16 * 3 * 7 * 11


class TestRegistry:
    def test_all_names_present(self):
        assert set(DATASET_REGISTRY) == {
            "stencil-blocked", "stencil-grid-only", "stencil-threaded", "fmm"}

    def test_load_dataset_forwards_kwargs(self):
        data = load_dataset("stencil-grid-only", max_configs=20)
        assert data.n_samples == 20

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("spec-cpu")
