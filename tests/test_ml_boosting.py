"""Tests for repro.ml.boosting."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.metrics import r2_score
from repro.utils.validation import NotFittedError


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(8)
    X = rng.uniform(0, 6, size=(300, 3))
    y = np.sin(X[:, 0]) * 3 + 0.5 * X[:, 1] + 0.05 * rng.normal(size=300)
    return X[:220], y[:220], X[220:], y[220:]


class TestGradientBoosting:
    def test_fit_predict_generalization(self, data):
        Xtr, ytr, Xte, yte = data
        model = GradientBoostingRegressor(n_estimators=80, learning_rate=0.1,
                                          max_depth=3, random_state=0).fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.9

    def test_more_stages_reduce_training_error(self, data):
        Xtr, ytr, _, _ = data
        model = GradientBoostingRegressor(n_estimators=50, random_state=0).fit(Xtr, ytr)
        scores = model.train_score_
        assert scores[-1] < scores[0]
        assert len(scores) == 50

    def test_single_stage_near_constant(self, data):
        Xtr, ytr, Xte, _ = data
        model = GradientBoostingRegressor(n_estimators=1, learning_rate=0.1,
                                          random_state=0).fit(Xtr, ytr)
        preds = model.predict(Xte)
        # One shrunken stage stays close to the initial mean prediction.
        assert np.all(np.abs(preds - ytr.mean()) < np.abs(ytr - ytr.mean()).max())

    def test_staged_predict_improves(self, data):
        Xtr, ytr, Xte, yte = data
        model = GradientBoostingRegressor(n_estimators=40, random_state=0).fit(Xtr, ytr)
        staged = list(model.staged_predict(Xte))
        assert len(staged) == 40
        first_r2 = r2_score(yte, staged[0])
        last_r2 = r2_score(yte, staged[-1])
        assert last_r2 > first_r2

    def test_stochastic_subsample(self, data):
        Xtr, ytr, Xte, yte = data
        model = GradientBoostingRegressor(n_estimators=60, subsample=0.5,
                                          random_state=0).fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.8

    def test_deterministic(self, data):
        Xtr, ytr, Xte, _ = data
        p1 = GradientBoostingRegressor(n_estimators=20, random_state=4).fit(Xtr, ytr).predict(Xte)
        p2 = GradientBoostingRegressor(n_estimators=20, random_state=4).fit(Xtr, ytr).predict(Xte)
        np.testing.assert_array_equal(p1, p2)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GradientBoostingRegressor().predict([[1.0]])

    @pytest.mark.parametrize("kwargs", [
        dict(n_estimators=0), dict(learning_rate=0.0), dict(subsample=0.0),
        dict(subsample=1.5),
    ])
    def test_invalid_parameters(self, data, kwargs):
        Xtr, ytr, _, _ = data
        with pytest.raises(ValueError):
            GradientBoostingRegressor(**kwargs).fit(Xtr, ytr)

    def test_packed_predict_matches_stage_loop(self, data):
        """The packed-arena predict equals the per-stage Python loop."""
        Xtr, ytr, Xte, _ = data
        model = GradientBoostingRegressor(n_estimators=30, random_state=1).fit(Xtr, ytr)
        assert model.packed_.n_trees == 30
        loop = np.full(Xte.shape[0], model.init_prediction_)
        for tree in model.estimators_:
            loop += model.learning_rate * tree.tree_.predict(Xte)
        np.testing.assert_allclose(model.predict(Xte), loop, rtol=1e-12, atol=1e-12)

    def test_packed_staged_predict_matches_stage_loop(self, data):
        Xtr, ytr, Xte, _ = data
        model = GradientBoostingRegressor(n_estimators=12, random_state=2).fit(Xtr, ytr)
        loop = np.full(Xte.shape[0], model.init_prediction_)
        for staged, tree in zip(model.staged_predict(Xte), model.estimators_, strict=True):
            loop = loop + model.learning_rate * tree.tree_.predict(Xte)
            np.testing.assert_allclose(staged, loop, rtol=1e-12, atol=1e-12)

    def test_unpacked_fallback_matches_packed(self, data):
        """Instances without a packed arena (e.g. old pickles) still predict."""
        Xtr, ytr, Xte, _ = data
        model = GradientBoostingRegressor(n_estimators=15, random_state=3).fit(Xtr, ytr)
        packed = model.predict(Xte)
        model.packed_ = None
        np.testing.assert_allclose(model.predict(Xte), packed, rtol=1e-12, atol=1e-12)

    def test_works_inside_hybrid_model(self, small_stencil_dataset):
        from repro.analytical import StencilAnalyticalModel
        from repro.core import HybridPerformanceModel

        data = small_stencil_dataset
        train, test = data.train_test_indices(train_fraction=0.2, random_state=0)
        model = HybridPerformanceModel(
            analytical_model=StencilAnalyticalModel(),
            feature_names=data.feature_names,
            ml_model=GradientBoostingRegressor(n_estimators=40, random_state=0),
            random_state=0,
        ).fit(data.X[train], data.y[train])
        preds = model.predict(data.X[test])
        assert np.all(np.isfinite(preds))
